// Crash-recovery tier for the service snapshot (service/snapshot.hpp).
//
// Three concerns, mirroring the header's contract:
//  * round trip — a service killed mid-batch and restored from its
//    snapshot produces bit-identical results and planner-cache keys to
//    an uninterrupted run, across worker counts {1, 4, 8};
//  * fault injection — truncated, bit-flipped, version-bumped,
//    zero-length and hand-crafted hostile files all fail with a clean
//    typed error, never UB (this binary runs under the asan and
//    ubsan-integer presets via the `unit` label);
//  * format stability — the committed golden fixture pins the byte
//    layout; any unversioned drift fails here first.
#include "service/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/planner.hpp"
#include "service/portable.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"

namespace bfce::service {
namespace {

// ---------------------------------------------------------------------------
// Helpers

std::string temp_dir() {
  char tmpl[] = "/tmp/bfce_snapshot_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

/// Manually opened gate; factory jobs block on it to pin workers.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard lock(m);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return open; });
  }
};

class GateEstimator final : public estimators::CardinalityEstimator {
 public:
  explicit GateEstimator(std::shared_ptr<Gate> gate)
      : gate_(std::move(gate)) {}
  std::string name() const override { return "gate"; }
  estimators::EstimateOutcome estimate(
      rfid::ReaderContext&, const estimators::Requirement&) override {
    gate_->wait();
    estimators::EstimateOutcome out;
    out.n_hat = 1.0;
    return out;
  }

 private:
  std::shared_ptr<Gate> gate_;
};

/// Blocks `count` workers on the returned gate (non-portable jobs, so a
/// snapshot counts them as skipped, not pending).
std::shared_ptr<Gate> pin_workers(EstimationService& svc, unsigned count,
                                  const rfid::TagPopulation& pop) {
  auto gate = std::make_shared<Gate>();
  for (unsigned i = 0; i < count; ++i) {
    JobSpec spec;
    spec.population = &pop;
    spec.factory = [gate] { return std::make_unique<GateEstimator>(gate); };
    spec.seed = 77000 + i;
    (void)svc.submit(spec);
  }
  return gate;
}

util::BitVector pseudo_membership(std::size_t bits, std::uint64_t seed,
                                  std::uint32_t keep_mod) {
  util::BitVector bv(bits);
  util::Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng() % keep_mod == 0) bv.set(i);
  }
  return bv;
}

/// The mixed portable workload: synthetic + membership populations,
/// planner-shared BFCE variants, a registry protocol and a tracking job.
std::vector<PortableJobSpec> portable_workload() {
  std::vector<PortableJobSpec> specs;
  const estimators::Requirement reqs[] = {{0.05, 0.05}, {0.1, 0.1}};
  for (std::uint64_t i = 0; i < 10; ++i) {
    PortableJobSpec spec;
    spec.req = reqs[i % 2];
    spec.seed = 4200 + i;
    spec.max_attempts = 2;
    switch (i % 5) {
      case 0:
        spec.estimator = "BFCE";
        spec.population.kind = PortablePopulation::Kind::kSynthetic;
        spec.population.size = 20000 + 1000 * i;
        spec.population.distribution = rfid::TagIdDistribution::kT1Uniform;
        spec.population.seed = 10 + i;
        break;
      case 1:
        spec.estimator = "BFCE";
        spec.population.kind = PortablePopulation::Kind::kMembership;
        spec.population.seed = 20 + i;
        spec.population.membership = pseudo_membership(40000, 30 + i, 3);
        break;
      case 2:
        spec.estimator = "BFCE-avg";
        spec.population.kind = PortablePopulation::Kind::kSynthetic;
        spec.population.size = 12000;
        spec.population.distribution =
            rfid::TagIdDistribution::kT2ApproxNormal;
        spec.population.seed = 40 + i;
        break;
      case 3:
        spec.estimator = "ZOE";
        spec.req = {0.15, 0.15};
        spec.population.kind = PortablePopulation::Kind::kSynthetic;
        spec.population.size = 9000;
        spec.population.distribution = rfid::TagIdDistribution::kT3Normal;
        spec.population.seed = 50 + i;
        break;
      default: {
        spec.estimator = "BFCE";
        PortableTrackingSpec track;
        track.reader_id = 7 + i;
        track.initial_population = 8000;
        track.schedule.push_back({3, 0.05, 100.0});
        spec.tracking = track;
        break;
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Bit-identical comparison of everything deterministic in a JobResult
/// (wall-clock fields — queue_wait/exec/latency and engine wall_us —
/// are excluded; they are timing, not results).
void expect_bit_identical(const JobResult& a, const JobResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.outcome.n_hat, b.outcome.n_hat);
  EXPECT_EQ(a.outcome.ci_low, b.outcome.ci_low);
  EXPECT_EQ(a.outcome.ci_high, b.outcome.ci_high);
  EXPECT_EQ(a.outcome.airtime.reader_bits, b.outcome.airtime.reader_bits);
  EXPECT_EQ(a.outcome.airtime.tag_bits, b.outcome.airtime.tag_bits);
  EXPECT_EQ(a.outcome.airtime.intervals, b.outcome.airtime.intervals);
  EXPECT_EQ(a.outcome.airtime.tag_tx_bits, b.outcome.airtime.tag_tx_bits);
  EXPECT_EQ(a.outcome.rounds, b.outcome.rounds);
  EXPECT_EQ(a.outcome.met_by_design, b.outcome.met_by_design);
  EXPECT_EQ(a.outcome.note, b.outcome.note);
  EXPECT_EQ(a.airtime_s, b.airtime_s);
  for (std::size_t s = 0; s < rfid::kFrameShapeCount; ++s) {
    EXPECT_EQ(a.counters.by_shape[s].frames, b.counters.by_shape[s].frames);
    EXPECT_EQ(a.counters.by_shape[s].slots, b.counters.by_shape[s].slots);
    EXPECT_EQ(a.counters.by_shape[s].tag_tx, b.counters.by_shape[s].tag_tx);
  }
  EXPECT_EQ(a.counters.batches, b.counters.batches);
  EXPECT_EQ(a.counters.sampled_batches, b.counters.sampled_batches);
  ASSERT_EQ(a.tracking.has_value(), b.tracking.has_value());
  if (a.tracking.has_value()) {
    const tracking::TrackResult& ta = *a.tracking;
    const tracking::TrackResult& tb = *b.tracking;
    EXPECT_EQ(ta.reader_id, tb.reader_id);
    ASSERT_EQ(ta.trajectory.size(), tb.trajectory.size());
    for (std::size_t p = 0; p < ta.trajectory.size(); ++p) {
      EXPECT_EQ(ta.trajectory[p].true_n, tb.trajectory[p].true_n) << p;
      EXPECT_EQ(ta.trajectory[p].raw_n_hat, tb.trajectory[p].raw_n_hat) << p;
      EXPECT_EQ(ta.trajectory[p].tracked_n, tb.trajectory[p].tracked_n) << p;
      EXPECT_EQ(ta.trajectory[p].variance, tb.trajectory[p].variance) << p;
    }
    EXPECT_EQ(ta.summary.raw_rmse, tb.summary.raw_rmse);
    EXPECT_EQ(ta.summary.tracked_rmse, tb.summary.tracked_rmse);
    EXPECT_EQ(ta.summary.design_misses, tb.summary.design_misses);
  }
  ASSERT_EQ(a.federation.has_value(), b.federation.has_value());
  if (a.federation.has_value()) {
    EXPECT_EQ(a.federation->rng_fingerprint, b.federation->rng_fingerprint);
    EXPECT_EQ(a.federation->merge.merges, b.federation->merge.merges);
  }
}

using PlannerKey =
    std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint64_t,
               std::uint64_t>;

std::set<PlannerKey> planner_keys(const core::PersistencePlanner& planner) {
  std::set<PlannerKey> keys;
  for (const core::PlannerEntry& e : planner.export_entries()) {
    keys.insert({e.n_low_bits, e.w, e.k, e.eps_bits, e.delta_bits});
  }
  return keys;
}

/// A fully fabricated snapshot with every section populated — the
/// codec-coverage and golden-fixture source of truth. Every value is a
/// compile-time constant so the encoding is stable forever.
ServiceSnapshot fabricated_snapshot() {
  ServiceSnapshot snap;
  snap.substrate_fingerprint = substrate_fingerprint(
      rfid::FrameMode::kSampled, rfid::ChannelModel{}, rfid::TimingModel{});
  snap.next_id = 9;
  snap.rejected = 3;
  snap.non_portable_skipped = 1;

  snap.planner.present = true;
  snap.planner.n_low_mantissa_bits = 52;
  for (std::uint32_t i = 0; i < 2; ++i) {
    core::PlannerEntry e;
    e.n_low_bits = 0x40C81C8000000000ULL + i;  // ~12345.0
    e.w = 1024;
    e.k = 3;
    e.eps_bits = 0x3FA999999999999AULL;   // 0.05
    e.delta_bits = 0x3FA999999999999AULL;
    e.choice = {static_cast<std::uint32_t>(37 + i), 0.0361328125, true,
                0.125};
    snap.planner.entries.push_back(e);
  }

  JobResult done;
  done.status = JobStatus::kDone;
  done.outcome.n_hat = 12001.5;
  done.outcome.ci_low = 11800.25;
  done.outcome.ci_high = 12202.75;
  done.outcome.airtime = {100000, 50000, 2000, 48000};
  done.outcome.time_us = 1.25e6;
  done.outcome.rounds = 2;
  done.outcome.met_by_design = true;
  done.airtime_s = 1.25;
  done.attempts = 1;
  done.counters.by_shape[0] = {4, 4096, 9000, 0.0};
  done.counters.batches = 2;
  snap.completed.emplace_back(2, done);

  JobResult tracked = done;
  tracked.outcome.note = "tracking: fabricated";
  tracking::TrackResult t;
  t.reader_id = 7;
  tracking::TrackPoint p{};
  p.round = 1;
  p.true_n = 8000;
  p.raw_n_hat = 8050.5;
  p.tracked_n = 8010.25;
  p.predicted_n = 8000.0;
  p.innovation = 50.5;
  p.residual = 40.25;
  p.gain = 0.5;
  p.variance = 900.0;
  p.measurement_sd = 80.0;
  p.p_o = 0.0361328125;
  p.met_by_design = true;
  p.airtime_s = 0.75;
  t.trajectory.push_back(p);
  t.summary = {1, 50.5, 10.25, 0.0063, 0.0013, 50.5, 40.25, 0.75, 0};
  tracked.tracking = t;
  snap.completed.emplace_back(3, tracked);

  JobResult fed = done;
  FederationResult fr;
  fr.readers = 4;
  fr.schedule_rounds = 2;
  fr.fleet_airtime_s = 5.0;
  fr.correction_g = 1.0625;
  fr.overlap_fraction = 0.25;
  fr.merge = {3, 192, 2};
  fr.rng_fingerprint = 0xFEEDFACECAFEBEEFULL;
  fed.federation = fr;
  snap.completed.emplace_back(5, fed);

  JobResult failed;
  failed.status = JobStatus::kFailed;
  failed.outcome.note = "unknown estimator 'NOPE'";
  snap.completed.emplace_back(6, failed);

  PortableJobSpec synth;
  synth.estimator = "BFCE";
  synth.req = {0.05, 0.05};
  synth.seed = 42;
  synth.population.kind = PortablePopulation::Kind::kSynthetic;
  synth.population.size = 20000;
  synth.population.distribution = rfid::TagIdDistribution::kT1Uniform;
  synth.population.seed = 11;
  snap.pending.emplace_back(7, synth);

  PortableJobSpec member;
  member.estimator = "BFCE-avg";
  member.req = {0.1, 0.1};
  member.seed = 43;
  member.max_attempts = 2;
  member.population.kind = PortablePopulation::Kind::kMembership;
  member.population.seed = 12;
  member.population.membership = util::BitVector(130);
  member.population.membership.set(0);
  member.population.membership.set(64);
  member.population.membership.set(129);
  snap.pending.emplace_back(8, member);

  PortableJobSpec track_spec;
  track_spec.estimator = "BFCE";
  track_spec.seed = 44;
  track_spec.population.kind = PortablePopulation::Kind::kNone;
  PortableTrackingSpec ts;
  ts.reader_id = 9;
  ts.initial_population = 8000;
  ts.schedule.push_back({3, 0.05, 100.0});
  track_spec.tracking = ts;
  snap.pending.emplace_back(4, track_spec);
  std::sort(snap.pending.begin(), snap.pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

void expect_snapshot_equal(const ServiceSnapshot& a,
                           const ServiceSnapshot& b) {
  EXPECT_EQ(a.substrate_fingerprint, b.substrate_fingerprint);
  EXPECT_EQ(a.next_id, b.next_id);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.non_portable_skipped, b.non_portable_skipped);
  EXPECT_EQ(a.planner.present, b.planner.present);
  EXPECT_EQ(a.planner.n_low_mantissa_bits, b.planner.n_low_mantissa_bits);
  ASSERT_EQ(a.planner.entries.size(), b.planner.entries.size());
  for (std::size_t i = 0; i < a.planner.entries.size(); ++i) {
    EXPECT_EQ(a.planner.entries[i], b.planner.entries[i]) << i;
  }
  ASSERT_EQ(a.completed.size(), b.completed.size());
  for (std::size_t i = 0; i < a.completed.size(); ++i) {
    EXPECT_EQ(a.completed[i].first, b.completed[i].first);
    expect_bit_identical(a.completed[i].second, b.completed[i].second,
                         "completed " + std::to_string(i));
    EXPECT_EQ(a.completed[i].second.outcome.time_us,
              b.completed[i].second.outcome.time_us);
  }
  ASSERT_EQ(a.pending.size(), b.pending.size());
  for (std::size_t i = 0; i < a.pending.size(); ++i) {
    EXPECT_EQ(a.pending[i].first, b.pending[i].first);
    EXPECT_TRUE(a.pending[i].second == b.pending[i].second) << i;
  }
}

// ---------------------------------------------------------------------------
// Portable-spec codec and materialization

TEST(Portable, CodecRoundTripsEveryKind) {
  for (const auto& [id, spec] : fabricated_snapshot().pending) {
    util::ByteWriter w;
    encode_portable_job(w, spec);
    const std::vector<std::uint8_t> bytes = w.take();
    util::ByteReader r(bytes);
    const PortableJobSpec back = decode_portable_job(r);
    EXPECT_TRUE(r.exhausted()) << id;
    EXPECT_TRUE(back == spec) << id;
  }
}

TEST(Portable, ValidationRejectsBadSpecs) {
  PortableJobSpec good;
  good.population.kind = PortablePopulation::Kind::kSynthetic;
  good.population.size = 100;
  EXPECT_EQ(validate_portable_job(good), nullptr);

  PortableJobSpec bad = good;
  bad.req.epsilon = 0.0;
  EXPECT_NE(validate_portable_job(bad), nullptr);
  bad = good;
  bad.req.delta = 1.5;
  EXPECT_NE(validate_portable_job(bad), nullptr);
  bad = good;
  bad.estimator.clear();
  EXPECT_NE(validate_portable_job(bad), nullptr);
  bad = good;
  bad.airtime_budget_s = -1.0;
  EXPECT_NE(validate_portable_job(bad), nullptr);
  bad = good;
  bad.population.size = kMaxPortableTags + 1;
  EXPECT_NE(validate_portable_job(bad), nullptr);
  bad = good;
  bad.population.kind = PortablePopulation::Kind::kNone;
  EXPECT_NE(validate_portable_job(bad), nullptr);
  bad = good;
  bad.tracking = PortableTrackingSpec{};  // empty schedule
  EXPECT_NE(validate_portable_job(bad), nullptr);
  bad = good;
  PortableTrackingSpec ts;
  ts.schedule.push_back({0, 0.1, 10.0});  // zero rounds
  bad.tracking = ts;
  EXPECT_NE(validate_portable_job(bad), nullptr);
}

TEST(Portable, MembershipMaterializationIsDeterministic) {
  PortableJobSpec spec;
  spec.population.kind = PortablePopulation::Kind::kMembership;
  spec.population.seed = 99;
  spec.population.membership = pseudo_membership(5000, 5, 4);

  const auto a = materialize(spec);
  const auto b = materialize(spec);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->population->size(), b->population->size());
  EXPECT_EQ(a->population->size(),
            spec.population.membership.count_ones());
  for (std::size_t i = 0; i < a->population->size(); ++i) {
    EXPECT_EQ(a->population->tags()[i].id, b->population->tags()[i].id);
    EXPECT_EQ(a->population->tags()[i].rn, b->population->tags()[i].rn);
    // bit i ⇒ tag id i+1, so ids are positive and within the universe.
    EXPECT_GE(a->population->tags()[i].id, 1u);
    EXPECT_LE(a->population->tags()[i].id,
              spec.population.membership.size());
  }
}

// ---------------------------------------------------------------------------
// Snapshot codec

TEST(SnapshotCodec, RoundTripsEverySection) {
  const ServiceSnapshot snap = fabricated_snapshot();
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);

  ServiceSnapshot back;
  ASSERT_EQ(decode_snapshot(bytes, back), SnapshotError::kNone);
  expect_snapshot_equal(snap, back);

  // Determinism: encoding the decoded snapshot reproduces the bytes.
  EXPECT_EQ(encode_snapshot(back), bytes);
}

TEST(SnapshotCodec, ErrorLabelsAreStable) {
  EXPECT_STREQ(to_cstring(SnapshotError::kNone), "ok");
  EXPECT_STREQ(to_cstring(SnapshotError::kTruncated), "truncated");
  EXPECT_STREQ(to_cstring(SnapshotError::kChecksumMismatch),
               "checksum_mismatch");
  EXPECT_STREQ(to_cstring(SnapshotError::kBadState), "bad_state");
}

// ---------------------------------------------------------------------------
// Fault injection: every planted corruption fails with a typed error.

TEST(SnapshotFaults, ZeroLengthFileIsTruncated) {
  const std::string dir = temp_dir();
  const std::string path = dir + "/empty.bfss";
  write_file(path, {});
  ServiceSnapshot out;
  EXPECT_EQ(load_snapshot(path, out), SnapshotError::kTruncated);
}

TEST(SnapshotFaults, MissingFileIsIoError) {
  ServiceSnapshot out;
  EXPECT_EQ(load_snapshot("/nonexistent/bfce/snapshot.bfss", out),
            SnapshotError::kIoError);
}

TEST(SnapshotFaults, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(fabricated_snapshot());
  // Every prefix length (stride keeps runtime sane; boundaries exact).
  std::vector<std::size_t> cuts = {0, 1, 4, 8, 23, 24, 25, bytes.size() - 1};
  for (std::size_t cut = 0; cut < bytes.size(); cut += 97) cuts.push_back(cut);
  for (const std::size_t cut : cuts) {
    const std::vector<std::uint8_t> part(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
    ServiceSnapshot out;
    EXPECT_EQ(decode_snapshot(part, out), SnapshotError::kTruncated)
        << "cut at " << cut;
  }
}

TEST(SnapshotFaults, EveryBitFlipIsRejected) {
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(fabricated_snapshot());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[byte] = static_cast<std::uint8_t>(flipped[byte] ^
                                              (1u << (byte % 8)));
    ServiceSnapshot out;
    const SnapshotError err = decode_snapshot(flipped, out);
    EXPECT_NE(err, SnapshotError::kNone) << "flip at byte " << byte;
    if (byte >= 24) {
      // Payload flips are always caught by the CRC, before any decode.
      EXPECT_EQ(err, SnapshotError::kChecksumMismatch) << byte;
    }
  }
}

TEST(SnapshotFaults, VersionBumpIsRejected) {
  std::vector<std::uint8_t> bytes = encode_snapshot(fabricated_snapshot());
  bytes[4] = static_cast<std::uint8_t>(kSnapshotVersion + 1);
  ServiceSnapshot out;
  EXPECT_EQ(decode_snapshot(bytes, out), SnapshotError::kBadVersion);
}

TEST(SnapshotFaults, BadMagicIsRejected) {
  std::vector<std::uint8_t> bytes = encode_snapshot(fabricated_snapshot());
  bytes[0] = 'X';
  ServiceSnapshot out;
  EXPECT_EQ(decode_snapshot(bytes, out), SnapshotError::kBadMagic);
}

TEST(SnapshotFaults, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> bytes = encode_snapshot(fabricated_snapshot());
  bytes.push_back(0xAB);
  ServiceSnapshot out;
  EXPECT_EQ(decode_snapshot(bytes, out), SnapshotError::kMalformed);
}

/// Wraps a hand-crafted payload in a *valid* header (correct magic,
/// version and CRC) so the decoder itself — not the checksum — must
/// reject it.
std::vector<std::uint8_t> with_valid_header(
    const std::vector<std::uint8_t>& payload) {
  util::ByteWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u64(payload.size());
  w.u64(util::crc64(payload.data(), payload.size()));
  w.raw(payload.data(), payload.size());
  return w.take();
}

TEST(SnapshotFaults, HostileCountsCannotForceAllocation) {
  // Planner section claiming 2^61 entries in a tiny payload.
  {
    util::ByteWriter w;
    w.u64(substrate_fingerprint(rfid::FrameMode::kSampled, {}, {}));
    w.u64(1);  // next_id
    w.u64(0);  // rejected
    w.u64(0);  // skipped
    w.u8(1);   // planner present
    w.u32(52);
    w.u64(std::uint64_t{1} << 61);  // entry count
    ServiceSnapshot out;
    EXPECT_EQ(decode_snapshot(with_valid_header(w.take()), out),
              SnapshotError::kMalformed);
  }
  // Completed section claiming 2^60 results.
  {
    util::ByteWriter w;
    w.u64(substrate_fingerprint(rfid::FrameMode::kSampled, {}, {}));
    w.u64(1);
    w.u64(0);
    w.u64(0);
    w.u8(0);                        // no planner
    w.u64(std::uint64_t{1} << 60);  // completed count
    ServiceSnapshot out;
    EXPECT_EQ(decode_snapshot(with_valid_header(w.take()), out),
              SnapshotError::kMalformed);
  }
  // Pending job with a membership bitmap claiming 2^50 bits.
  {
    util::ByteWriter w;
    w.u64(substrate_fingerprint(rfid::FrameMode::kSampled, {}, {}));
    w.u64(1);
    w.u64(0);
    w.u64(0);
    w.u8(0);
    w.u64(0);  // completed count
    w.u64(1);  // pending count
    w.u64(7);  // job id
    w.str("BFCE");
    w.f64(0.05);
    w.f64(0.05);
    w.u64(42);
    w.f64(1e9);
    w.f64(1e9);
    w.u32(1);
    w.u8(2);                        // membership kind
    w.u64(9);                       // population seed
    w.u64(std::uint64_t{1} << 50);  // bitmap bit count
    ServiceSnapshot out;
    EXPECT_EQ(decode_snapshot(with_valid_header(w.take()), out),
              SnapshotError::kMalformed);
  }
  // A non-terminal status in the completed section.
  {
    util::ByteWriter w;
    w.u64(substrate_fingerprint(rfid::FrameMode::kSampled, {}, {}));
    w.u64(1);
    w.u64(0);
    w.u64(0);
    w.u8(0);
    w.u64(1);  // completed count
    w.u64(3);  // id
    w.u8(static_cast<std::uint8_t>(JobStatus::kRunning));
    ServiceSnapshot out;
    EXPECT_EQ(decode_snapshot(with_valid_header(w.take()), out),
              SnapshotError::kMalformed);
  }
}

// ---------------------------------------------------------------------------
// File IO

TEST(SnapshotFile, SaveLoadRoundTripAndAtomicReplace) {
  const std::string dir = temp_dir();
  const std::string path = dir + "/service.bfss";
  const ServiceSnapshot snap = fabricated_snapshot();

  ASSERT_EQ(save_snapshot(snap, path), SnapshotError::kNone);
  ServiceSnapshot back;
  ASSERT_EQ(load_snapshot(path, back), SnapshotError::kNone);
  expect_snapshot_equal(snap, back);

  // Overwrite in place (the rename path over an existing file).
  ServiceSnapshot second = snap;
  second.rejected = 99;
  ASSERT_EQ(save_snapshot(second, path), SnapshotError::kNone);
  ASSERT_EQ(load_snapshot(path, back), SnapshotError::kNone);
  EXPECT_EQ(back.rejected, 99u);

  // The temp file never lingers after a successful save.
  const std::string tmp_probe = path + ".tmp." + std::to_string(::getpid());
  EXPECT_TRUE(read_file(tmp_probe).empty());

  ASSERT_EQ(save_snapshot(snap, "/nonexistent/dir/x.bfss"),
            SnapshotError::kIoError);
}

// ---------------------------------------------------------------------------
// Golden fixture: the committed bytes pin format version 1.

TEST(SnapshotGolden, CommittedFixtureMatchesEncoder) {
  const std::string path = std::string(BFCE_TEST_DATA_DIR) +
                           "/golden_snapshot.bin";
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(fabricated_snapshot());

  if (std::getenv("BFCE_REGEN_GOLDEN") != nullptr) {
    write_file(path, bytes);
    GTEST_SKIP() << "regenerated " << path << " (" << bytes.size()
                 << " bytes)";
  }

  const std::vector<std::uint8_t> golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << "missing fixture " << path
      << " — regenerate with BFCE_REGEN_GOLDEN=1";
  // Byte equality both ways: an encoder change OR a fixture edit that
  // is not accompanied by a kSnapshotVersion bump fails here.
  EXPECT_EQ(bytes, golden)
      << "snapshot byte layout drifted without a version bump";

  ServiceSnapshot decoded;
  ASSERT_EQ(decode_snapshot(golden, decoded), SnapshotError::kNone);
  expect_snapshot_equal(fabricated_snapshot(), decoded);
}

// ---------------------------------------------------------------------------
// Service round trip: kill mid-batch, restore, bit-identical.

TEST(ServiceRecovery, RestoreRefusesWrongSubstrateAndUsedService) {
  ServiceSnapshot snap = fabricated_snapshot();
  snap.completed.clear();  // keep only pending (cheap to materialize)
  snap.pending.resize(1);

  // Wrong substrate: a service with a lossy channel.
  {
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.channel.false_busy_rate = 0.01;
    EstimationService svc(cfg);
    EXPECT_EQ(svc.restore(snap), SnapshotError::kConfigMismatch);
  }
  // Non-fresh service.
  {
    EstimationService svc({.workers = 1});
    PortableJobSpec spec;
    spec.population.kind = PortablePopulation::Kind::kSynthetic;
    spec.population.size = 500;
    (void)svc.submit_portable(spec);
    svc.drain();
    EXPECT_EQ(svc.restore(snap), SnapshotError::kBadState);
  }
  // Duplicate ids.
  {
    ServiceSnapshot dup = snap;
    dup.pending.push_back(dup.pending.front());
    EstimationService svc({.workers = 1});
    EXPECT_EQ(svc.restore(dup), SnapshotError::kMalformed);
  }
}

TEST(ServiceRecovery, KillAndRestoreIsBitIdenticalAcrossWorkerCounts) {
  const std::vector<PortableJobSpec> specs = portable_workload();
  const std::size_t half = specs.size() / 2;
  const auto pop =
      rfid::make_population(100, rfid::TagIdDistribution::kT1Uniform, 1);

  // Reference: one uninterrupted service runs the whole workload.
  core::PersistencePlanner ref_planner;
  std::vector<JobResult> reference;
  {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.planner = &ref_planner;
    EstimationService svc(cfg);
    std::vector<JobId> ids;
    for (const PortableJobSpec& spec : specs) {
      ids.push_back(svc.submit_portable(spec));
      ASSERT_NE(ids.back(), kInvalidJob);
    }
    for (const JobId id : ids) reference.push_back(svc.wait(id));
  }
  const std::set<PlannerKey> reference_keys = planner_keys(ref_planner);
  EXPECT_FALSE(reference_keys.empty());

  for (const unsigned workers : {1u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));

    // Interrupted run: finish the first half, pin every worker, queue
    // the second half, cut the snapshot, then kill the service.
    core::PersistencePlanner cut_planner;
    std::vector<std::uint8_t> bytes;
    std::vector<JobId> first_ids;
    std::vector<JobId> second_ids;
    std::vector<JobResult> first_results;
    {
      ServiceConfig cfg;
      cfg.workers = workers;
      cfg.planner = &cut_planner;
      EstimationService svc(cfg);
      for (std::size_t i = 0; i < half; ++i) {
        first_ids.push_back(svc.submit_portable(specs[i]));
      }
      svc.drain();
      for (const JobId id : first_ids) {
        first_results.push_back(svc.wait(id));
      }

      const std::shared_ptr<Gate> gate = pin_workers(svc, workers, pop);
      for (std::size_t i = half; i < specs.size(); ++i) {
        second_ids.push_back(svc.submit_portable(specs[i]));
      }
      // The gate guarantees the second half is still queued here.
      const ServiceSnapshot snap = svc.snapshot();
      EXPECT_EQ(snap.pending.size(), specs.size() - half);
      EXPECT_EQ(snap.completed.size(), half);
      EXPECT_EQ(snap.non_portable_skipped, workers);
      bytes = encode_snapshot(snap);
      gate->release();
    }  // service torn down — the "crash"

    // Restored run: decode, restore into a fresh service + planner.
    ServiceSnapshot snap;
    ASSERT_EQ(decode_snapshot(bytes, snap), SnapshotError::kNone);
    core::PersistencePlanner restore_planner;  // seeded by restore()
    EstimationService restored({.workers = workers,
                                .planner = &restore_planner});
    ASSERT_EQ(restored.restore(snap), SnapshotError::kNone);
    restored.drain();

    // Completed jobs: byte-for-byte the recorded results.
    for (std::size_t i = 0; i < first_ids.size(); ++i) {
      expect_bit_identical(restored.wait(first_ids[i]), first_results[i],
                           "completed job " + std::to_string(i));
    }
    // Pending jobs: re-executed, bit-identical to the uninterrupted run.
    for (std::size_t i = 0; i < second_ids.size(); ++i) {
      expect_bit_identical(restored.wait(second_ids[i]),
                           reference[half + i],
                           "recovered job " + std::to_string(i));
    }
    // Planner cache: same key set as the uninterrupted planner.
    EXPECT_EQ(planner_keys(restore_planner), reference_keys);

    // Aggregates were re-accounted: every job is terminal and counted.
    const ServiceMetrics m = restored.metrics();
    EXPECT_EQ(m.admitted, specs.size());
    EXPECT_EQ(m.completed, specs.size());
  }
}

TEST(ServiceRecovery, SnapshotOfRestoredServiceConverges) {
  // snapshot → restore → snapshot must reproduce the same jobs (ids,
  // results) once drained — the fixpoint property of re-accounting.
  const std::vector<PortableJobSpec> specs = portable_workload();
  core::PersistencePlanner planner;
  std::vector<std::uint8_t> bytes;
  {
    EstimationService svc({.workers = 2, .planner = &planner});
    for (std::size_t i = 0; i < 4; ++i) {
      (void)svc.submit_portable(specs[i]);
    }
    svc.drain();
    bytes = encode_snapshot(svc.snapshot());
  }
  ServiceSnapshot snap;
  ASSERT_EQ(decode_snapshot(bytes, snap), SnapshotError::kNone);

  EstimationService restored({.workers = 2, .planner = &planner});
  ASSERT_EQ(restored.restore(snap), SnapshotError::kNone);
  restored.drain();
  const ServiceSnapshot again = restored.snapshot();
  ASSERT_EQ(again.completed.size(), snap.completed.size());
  for (std::size_t i = 0; i < snap.completed.size(); ++i) {
    EXPECT_EQ(again.completed[i].first, snap.completed[i].first);
    expect_bit_identical(again.completed[i].second, snap.completed[i].second,
                         "converged job " + std::to_string(i));
  }
  EXPECT_TRUE(again.pending.empty());
}

}  // namespace
}  // namespace bfce::service
