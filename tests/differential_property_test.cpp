// Property sweep for the differential estimator over the churn lattice.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/differential.hpp"
#include "rfid/population.hpp"

namespace bfce::core {
namespace {

// (base population, departed fraction, arrived fraction)
using ChurnParam = std::tuple<std::size_t, double, double>;

class DifferentialSweepTest
    : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(DifferentialSweepTest, RecoversTheChurnComposition) {
  const auto [base, dep_frac, arr_frac] = GetParam();
  const auto dep = static_cast<std::size_t>(static_cast<double>(base) *
                                            dep_frac);
  const auto arr = static_cast<std::size_t>(static_cast<double>(base) *
                                            arr_frac);
  const auto all = rfid::make_population(
      base + arr, rfid::TagIdDistribution::kT1Uniform,
      base ^ (dep * 7) ^ (arr * 13));
  std::vector<rfid::Tag> ref_tags(all.tags().begin(),
                                  all.tags().begin() +
                                      static_cast<long>(base));
  std::vector<rfid::Tag> cur_tags(all.tags().begin() +
                                      static_cast<long>(dep),
                                  all.tags().end());
  const rfid::TagPopulation ref_pop{std::move(ref_tags)};
  const rfid::TagPopulation cur_pop{std::move(cur_tags)};

  DifferentialConfig cfg;
  cfg.tune_for(static_cast<double>(base + arr));
  const rfid::Channel ch;
  util::Xoshiro256ss rng(99);
  const auto snap_ref = take_snapshot(ref_pop, cfg, ch, rng);
  const auto snap_cur = take_snapshot(cur_pop, cfg, ch, rng);
  const ChurnEstimate churn = compare_snapshots(snap_ref, snap_cur, cfg);

  // Tolerances: relative 35% on each component plus an absolute floor
  // covering sampling noise at small counts.
  const double dep_tol = static_cast<double>(dep) * 0.35 + 250.0;
  const double arr_tol = static_cast<double>(arr) * 0.35 + 250.0;
  EXPECT_NEAR(churn.departed, static_cast<double>(dep), dep_tol);
  EXPECT_NEAR(churn.arrived, static_cast<double>(arr), arr_tol);
  EXPECT_NEAR(churn.stayed, static_cast<double>(base - dep),
              static_cast<double>(base) * 0.12 + 250.0);
}

INSTANTIATE_TEST_SUITE_P(
    ChurnLattice, DifferentialSweepTest,
    ::testing::Values(ChurnParam{10000, 0.0, 0.0},
                      ChurnParam{10000, 0.1, 0.0},
                      ChurnParam{10000, 0.0, 0.1},
                      ChurnParam{10000, 0.2, 0.2},
                      ChurnParam{10000, 0.5, 0.05},
                      ChurnParam{50000, 0.1, 0.1},
                      ChurnParam{50000, 0.3, 0.0},
                      ChurnParam{200000, 0.15, 0.05}),
    [](const auto& param_info) {
      // Built incrementally: operator+ chains trip GCC 12's -Wrestrict
      // false positive under -Werror.
      std::string name = "n";
      name += std::to_string(std::get<0>(param_info.param));
      name += "_dep";
      name += std::to_string(
          static_cast<int>(std::get<1>(param_info.param) * 100));
      name += "_arr";
      name += std::to_string(
          static_cast<int>(std::get<2>(param_info.param) * 100));
      return name;
    });

}  // namespace
}  // namespace bfce::core
