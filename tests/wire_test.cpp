// Wire front-door tier (service/wire.hpp): protocol correctness plus
// the robustness matrix the header promises — malformed frames answered
// and survived, oversized length prefixes rejected with a close,
// mid-frame disconnects counted, slow clients timed out, and overload
// shed (BUSY / connection drops) instead of queued without bound.
#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/portable.hpp"
#include "service/service.hpp"
#include "util/serial.hpp"

namespace bfce::service {
namespace {

std::string socket_path(const std::string& name) {
  return "/tmp/bfce_wire_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

/// Polls `pred` against the server's stats until it holds or ~5 s pass.
bool eventually(const WireServer& server,
                const std::function<bool(const WireStats&)>& pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred(server.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred(server.stats());
}

PortableJobSpec quick_spec(std::uint64_t seed) {
  PortableJobSpec spec;
  spec.estimator = "BFCE";
  spec.req = {0.1, 0.1};
  spec.seed = seed;
  spec.population.kind = PortablePopulation::Kind::kSynthetic;
  spec.population.size = 5000;
  spec.population.distribution = rfid::TagIdDistribution::kT1Uniform;
  spec.population.seed = seed + 1;
  return spec;
}

/// Manually opened gate; factory jobs block on it to pin the worker.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard lock(m);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return open; });
  }
};

class GateEstimator final : public estimators::CardinalityEstimator {
 public:
  explicit GateEstimator(std::shared_ptr<Gate> gate)
      : gate_(std::move(gate)) {}
  std::string name() const override { return "gate"; }
  estimators::EstimateOutcome estimate(
      rfid::ReaderContext&, const estimators::Requirement&) override {
    gate_->wait();
    estimators::EstimateOutcome out;
    out.n_hat = 1.0;
    return out;
  }

 private:
  std::shared_ptr<Gate> gate_;
};

// ---------------------------------------------------------------------------

TEST(Wire, RefusesUnusableSocketPaths) {
  EstimationService svc({.workers = 1});
  {
    WireServer server(svc, {.socket_path = ""});
    EXPECT_FALSE(server.running());
  }
  {
    WireServer server(svc,
                      {.socket_path = "/nonexistent/dir/bfce_wire.sock"});
    EXPECT_FALSE(server.running());
  }
  {
    WireServer server(svc, {.socket_path = std::string(300, 'x')});
    EXPECT_FALSE(server.running());
  }
}

TEST(Wire, PingMetricsAndStatsAttachment) {
  EstimationService svc({.workers = 1});
  WireServer server(svc, {.socket_path = socket_path("ping")});
  ASSERT_TRUE(server.running());

  auto client = WireClient::connect(server.socket_path());
  ASSERT_TRUE(client.has_value());
  EXPECT_TRUE(client->ping());
  EXPECT_TRUE(client->ping());  // frames are request/response, in order

  const auto json = client->metrics_json();
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("\"wire\""), std::string::npos);
  EXPECT_NE(json->find("\"attached\": true"), std::string::npos);

  // The server registered itself as the service's stats source.
  const ServiceMetrics m = svc.metrics();
  EXPECT_TRUE(m.wire_attached);
  EXPECT_GE(m.wire.connections_accepted, 1u);
  EXPECT_GE(m.wire.frames_in, 3u);
  EXPECT_NE(render_service_metrics(m).find("wire:"), std::string::npos);

  client->close();
  server.stop();
  // Detached on stop: metrics no longer report a wire.
  EXPECT_FALSE(svc.metrics().wire_attached);
}

TEST(Wire, SubmitMatchesDirectExecutionBitForBit) {
  const PortableJobSpec spec = quick_spec(321);

  // Direct run on a private service.
  JobResult direct;
  {
    EstimationService svc({.workers = 2});
    direct = svc.wait(svc.submit_portable(spec));
  }

  EstimationService svc({.workers = 2});
  WireServer server(svc, {.socket_path = socket_path("submit")});
  ASSERT_TRUE(server.running());
  auto client = WireClient::connect(server.socket_path());
  ASSERT_TRUE(client.has_value());

  bool busy = false;
  const auto remote = client->submit(spec, &busy);
  ASSERT_TRUE(remote.has_value());
  EXPECT_FALSE(busy);
  EXPECT_EQ(remote->status, JobStatus::kDone);
  EXPECT_EQ(remote->status, direct.status);
  EXPECT_EQ(remote->attempts, direct.attempts);
  EXPECT_EQ(remote->outcome.n_hat, direct.outcome.n_hat);
  EXPECT_EQ(remote->outcome.ci_low, direct.outcome.ci_low);
  EXPECT_EQ(remote->outcome.ci_high, direct.outcome.ci_high);
  EXPECT_EQ(remote->outcome.airtime.reader_bits,
            direct.outcome.airtime.reader_bits);
  EXPECT_EQ(remote->outcome.airtime.tag_bits,
            direct.outcome.airtime.tag_bits);
  EXPECT_EQ(remote->outcome.rounds, direct.outcome.rounds);
  EXPECT_EQ(remote->airtime_s, direct.airtime_s);
  EXPECT_EQ(remote->counters.total().frames, direct.counters.total().frames);
  EXPECT_EQ(remote->counters.total().tag_tx, direct.counters.total().tag_tx);

  EXPECT_EQ(server.stats().submits, 1u);
}

TEST(Wire, MalformedFramesAnsweredAndConnectionSurvives) {
  EstimationService svc({.workers = 1});
  WireServer server(svc, {.socket_path = socket_path("malformed")});
  ASSERT_TRUE(server.running());
  auto client = WireClient::connect(server.socket_path());
  ASSERT_TRUE(client.has_value());

  // 1. Empty frame (length prefix 0, no payload).
  const std::uint8_t zero_len[4] = {0, 0, 0, 0};
  ASSERT_TRUE(client->send_raw(zero_len, sizeof(zero_len)));
  auto reply = client->recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[0], static_cast<std::uint8_t>(WireMsg::kError));

  // 2. Unknown message type.
  ASSERT_TRUE(client->send_frame({0x7F}));
  reply = client->recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[0], static_cast<std::uint8_t>(WireMsg::kError));

  // 3. SUBMIT with an undecodable body.
  ASSERT_TRUE(client->send_frame(
      {static_cast<std::uint8_t>(WireMsg::kSubmit), 0xDE, 0xAD}));
  reply = client->recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[0], static_cast<std::uint8_t>(WireMsg::kError));

  // 4. SUBMIT that decodes but fails validation (epsilon = 0).
  {
    PortableJobSpec bad = quick_spec(1);
    bad.req.epsilon = 0.0;
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(WireMsg::kSubmit));
    encode_portable_job(w, bad);
    ASSERT_TRUE(client->send_frame(w.take()));
    reply = client->recv_frame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ((*reply)[0], static_cast<std::uint8_t>(WireMsg::kError));
  }

  // The connection survived all four: a ping still round-trips and no
  // job was ever admitted.
  EXPECT_TRUE(client->ping());
  EXPECT_EQ(server.stats().malformed, 4u);
  EXPECT_EQ(svc.metrics().admitted, 0u);
}

TEST(Wire, OversizedLengthPrefixRejectedAndClosed) {
  EstimationService svc({.workers = 1});
  WireServer server(svc, {.socket_path = socket_path("oversized"),
                          .max_frame_bytes = 1024});
  ASSERT_TRUE(server.running());
  auto client = WireClient::connect(server.socket_path());
  ASSERT_TRUE(client.has_value());

  // 0xFFFFFFFF — a "negative" 32-bit length; far beyond the cap.
  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(client->send_raw(huge, sizeof(huge)));
  const auto reply = client->recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[0], static_cast<std::uint8_t>(WireMsg::kError));
  // The stream cannot resync, so the server closes it.
  EXPECT_FALSE(client->recv_frame().has_value());
  EXPECT_GE(server.stats().oversized, 1u);

  // A fresh connection is unaffected.
  auto again = WireClient::connect(server.socket_path());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->ping());
}

TEST(Wire, MidFrameDisconnectIsCountedNotFatal) {
  EstimationService svc({.workers = 1});
  WireServer server(svc, {.socket_path = socket_path("disconnect")});
  ASSERT_TRUE(server.running());
  {
    auto client = WireClient::connect(server.socket_path());
    ASSERT_TRUE(client.has_value());
    // Length prefix declaring 100 bytes, then only 10 — then vanish.
    const std::uint8_t prefix[4] = {100, 0, 0, 0};
    ASSERT_TRUE(client->send_raw(prefix, sizeof(prefix)));
    const std::uint8_t partial[10] = {};
    ASSERT_TRUE(client->send_raw(partial, sizeof(partial)));
    client->close();
  }
  EXPECT_TRUE(eventually(
      server, [](const WireStats& s) { return s.disconnects >= 1; }));

  auto again = WireClient::connect(server.socket_path());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->ping());
}

TEST(Wire, SlowClientIsTimedOutNotParked) {
  EstimationService svc({.workers = 1});
  WireServer server(svc, {.socket_path = socket_path("slow"),
                          .io_deadline_s = 0.2});
  ASSERT_TRUE(server.running());
  auto client = WireClient::connect(server.socket_path());
  ASSERT_TRUE(client.has_value());

  // Declare a 10-byte payload and never send it: the io thread must
  // give up after the deadline instead of blocking forever.
  const std::uint8_t prefix[4] = {10, 0, 0, 0};
  ASSERT_TRUE(client->send_raw(prefix, sizeof(prefix)));
  EXPECT_TRUE(
      eventually(server, [](const WireStats& s) { return s.timeouts >= 1; }));

  // The io thread is free again for well-behaved clients.
  auto again = WireClient::connect(server.socket_path());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->ping());
}

TEST(Wire, OverloadShedsJobsAndKeepsAcceptedLatencyBounded) {
  // One worker, queue of one: the worker is pinned by a direct job, one
  // wire job fills the queue, and every further SUBMIT must be shed
  // with BUSY immediately — not queued, not blocked.
  EstimationService svc({.workers = 1, .queue_capacity = 1});
  WireServer server(svc, {.socket_path = socket_path("overload")});
  ASSERT_TRUE(server.running());

  auto gate = std::make_shared<Gate>();
  const auto pop = rfid::make_population(
      100, rfid::TagIdDistribution::kT1Uniform, 1);
  JobSpec blocker;
  blocker.population = &pop;
  blocker.factory = [gate] { return std::make_unique<GateEstimator>(gate); };
  const JobId blocker_id = svc.submit(blocker);
  ASSERT_NE(blocker_id, kInvalidJob);
  // Wait until the worker has actually dequeued the blocker: until then
  // it occupies the queue slot and the filler below would be the one
  // shed instead of pinned.
  for (int i = 0; i < 500 && svc.metrics().running < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(svc.metrics().running, 1u);
  ASSERT_EQ(svc.queue_depth(), 0u);

  // Fill the queue through the wire from a background client.
  std::optional<JobResult> accepted;
  std::thread filler([&] {
    auto client = WireClient::connect(socket_path("overload"), 30.0);
    ASSERT_TRUE(client.has_value());
    accepted = client->submit(quick_spec(777));
  });
  for (int i = 0; i < 500 && svc.queue_depth() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(svc.queue_depth(), 1u);

  // Saturated: three more submissions are all shed.
  auto client = WireClient::connect(server.socket_path());
  ASSERT_TRUE(client.has_value());
  for (int i = 0; i < 3; ++i) {
    bool busy = false;
    const auto result = client->submit(quick_spec(800 + i), &busy);
    EXPECT_FALSE(result.has_value());
    EXPECT_TRUE(busy) << i;
  }
  EXPECT_EQ(server.stats().jobs_shed, 3u);

  gate->release();
  filler.join();
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->status, JobStatus::kDone);

  const ServiceMetrics m = svc.metrics();
  // Shed submissions count as service rejections, and shedding kept the
  // accepted-job latency tail bounded (nothing waited behind the shed
  // load; generous ceiling to stay robust on loaded CI hosts).
  EXPECT_EQ(m.rejected, 3u);
  EXPECT_EQ(m.wire.jobs_shed, 3u);
  EXPECT_LT(m.latency.p99_s, 30.0);
}

TEST(Wire, ConnectionQueueOverflowShedsConnections) {
  EstimationService svc({.workers = 1});
  WireServer server(svc, {.socket_path = socket_path("connshed"),
                          .io_threads = 1,
                          .max_pending_connections = 1});
  ASSERT_TRUE(server.running());

  // Pin the single io thread with a half-sent frame (default deadline
  // keeps it parked for seconds).
  auto pinner = WireClient::connect(server.socket_path());
  ASSERT_TRUE(pinner.has_value());
  const std::uint8_t prefix[4] = {10, 0, 0, 0};
  ASSERT_TRUE(pinner->send_raw(prefix, sizeof(prefix)));
  ASSERT_TRUE(eventually(server, [](const WireStats& s) {
    return s.connections_accepted >= 1;
  }));

  // One connection queues; the ones after must be shed.
  std::vector<WireClient> waiters;
  for (int i = 0; i < 4; ++i) {
    auto c = WireClient::connect(server.socket_path());
    if (c.has_value()) waiters.push_back(std::move(*c));
  }
  EXPECT_TRUE(eventually(
      server, [](const WireStats& s) { return s.connections_shed >= 1; }));
}

}  // namespace
}  // namespace bfce::service
