// Tests for the two-stage tag-searching protocol.
#include "core/search.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bfce::core {
namespace {

TEST(Search, OptimalFilterHashCount) {
  SearchConfig cfg;
  cfg.bits_per_item = 16;
  EXPECT_EQ(search_filter_hashes(cfg), 11u);  // ⌊16·ln2⌋
  cfg.bits_per_item = 8;
  EXPECT_EQ(search_filter_hashes(cfg), 5u);
  cfg.filter_hashes = 3;  // explicit override wins
  EXPECT_EQ(search_filter_hashes(cfg), 3u);
}

TEST(Search, EveryWantedIdPassesItsOwnFilter) {
  const auto wanted = rfid::make_population(
      2000, rfid::TagIdDistribution::kT1Uniform, 1);
  std::vector<std::uint64_t> ids;
  for (const rfid::Tag& t : wanted.tags()) ids.push_back(t.id);
  SearchConfig cfg;
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(passes_search_filter(id, ids, cfg)) << id;
  }
}

TEST(Search, FalsePositiveRateNearTheBloomBound) {
  const auto wanted = rfid::make_population(
      1000, rfid::TagIdDistribution::kT1Uniform, 2);
  const auto others = rfid::make_population(
      50000, rfid::TagIdDistribution::kT3Normal, 3);
  std::vector<std::uint64_t> ids;
  for (const rfid::Tag& t : wanted.tags()) ids.push_back(t.id);
  SearchConfig cfg;  // 16 bits/item, 11 hashes ⇒ fp ≈ 2^-11 ≈ 0.05%
  std::size_t fp = 0;
  for (const rfid::Tag& t : others.tags()) {
    if (passes_search_filter(t.id, ids, cfg)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / 50000.0, 0.004);
}

TEST(Search, FindsExactlyThePresentWantedTags) {
  // Wanted list of 1000; 700 are in the field among 20000 bystanders.
  const auto wanted = rfid::make_population(
      1000, rfid::TagIdDistribution::kT1Uniform, 4);
  const auto bystanders = rfid::make_population(
      20000, rfid::TagIdDistribution::kT3Normal, 5);
  std::vector<rfid::Tag> field_tags(wanted.tags().begin(),
                                    wanted.tags().begin() + 700);
  for (const rfid::Tag& t : bystanders.tags()) field_tags.push_back(t);
  const rfid::TagPopulation field{std::move(field_tags)};

  util::Xoshiro256ss rng(6);
  const SearchOutcome out =
      search_tags(wanted, field, SearchConfig{}, rfid::Channel{}, rng);

  EXPECT_EQ(out.found_count + out.missing_count + out.unverified_count,
            1000u);
  // All 700 present ones must not be called missing; the 300 absent
  // ones detected up to the (small) verification false-presence rate.
  for (std::size_t t = 0; t < 700; ++t) {
    EXPECT_NE(out.verdicts[t], AuthVerdict::kAbsent) << t;
  }
  EXPECT_GE(out.missing_count, 280u);
  EXPECT_LE(out.missing_count, 300u);
  // The 20000 bystanders were filtered down to a handful of stragglers.
  EXPECT_LT(out.filter_false_positives, 60u);
}

TEST(Search, CheaperThanPollingForBigLists) {
  const auto wanted = rfid::make_population(
      2000, rfid::TagIdDistribution::kT1Uniform, 7);
  const auto field = rfid::make_population(
      30000, rfid::TagIdDistribution::kT3Normal, 8);
  util::Xoshiro256ss rng(9);
  const SearchOutcome out =
      search_tags(wanted, field, SearchConfig{}, rfid::Channel{}, rng);
  const rfid::TimingModel tm;
  const double t_search = out.airtime.total_seconds(tm);
  const double t_poll = polling_cost(2000).total_seconds(tm);
  EXPECT_LT(t_search, t_poll);
}

TEST(Search, NobodyWantedIsPresent) {
  const auto wanted = rfid::make_population(
      500, rfid::TagIdDistribution::kT1Uniform, 10);
  const auto field = rfid::make_population(
      10000, rfid::TagIdDistribution::kT3Normal, 11);
  util::Xoshiro256ss rng(12);
  const SearchOutcome out =
      search_tags(wanted, field, SearchConfig{}, rfid::Channel{}, rng);
  EXPECT_GE(out.missing_count, 480u);  // all absent, tiny fp residue
  EXPECT_EQ(out.found_count + out.missing_count + out.unverified_count,
            500u);
}

TEST(Search, EmptyFieldMeansEverythingMissing) {
  const auto wanted = rfid::make_population(
      300, rfid::TagIdDistribution::kT1Uniform, 13);
  const rfid::TagPopulation field;
  util::Xoshiro256ss rng(14);
  const SearchOutcome out =
      search_tags(wanted, field, SearchConfig{}, rfid::Channel{}, rng);
  EXPECT_EQ(out.missing_count + out.unverified_count, 300u);
  EXPECT_EQ(out.found_count, 0u);
  EXPECT_EQ(out.filter_false_positives, 0u);
}

TEST(Search, DenserFiltersCutStragglers) {
  const auto wanted = rfid::make_population(
      1000, rfid::TagIdDistribution::kT1Uniform, 15);
  const auto field = rfid::make_population(
      40000, rfid::TagIdDistribution::kT3Normal, 16);
  util::Xoshiro256ss rng(17);
  SearchConfig thin;
  thin.bits_per_item = 4;
  SearchConfig dense;
  dense.bits_per_item = 24;
  const auto fp_thin =
      search_tags(wanted, field, thin, rfid::Channel{}, rng)
          .filter_false_positives;
  const auto fp_dense =
      search_tags(wanted, field, dense, rfid::Channel{}, rng)
          .filter_false_positives;
  EXPECT_GT(fp_thin, 5 * std::max<std::size_t>(1, fp_dense));
}

}  // namespace
}  // namespace bfce::core
