// Tests for the ASCII table writer and the CLI parser.
#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace bfce::util {
namespace {

TEST(Table, AlignsColumnsAndSeparates) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "123456"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(Table, RowsCounts) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
}

TEST(Cli, ParsesTypedOptions) {
  const char* argv[] = {"prog", "--trials=25", "--eps=0.1", "--csv",
                        "--name=T2"};
  Cli cli(5, argv, {"trials", "eps", "name"});
  EXPECT_EQ(cli.get_int("trials", 0), 25);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.1);
  EXPECT_EQ(cli.get("name", ""), "T2");
  EXPECT_TRUE(cli.csv());
  EXPECT_TRUE(cli.has("trials"));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, FallbacksApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv, {"trials"});
  EXPECT_EQ(cli.get_int("trials", 7), 7);
  EXPECT_EQ(cli.get_u64("seed", 123), 123u);  // default overridable
  EXPECT_FALSE(cli.csv());
}

TEST(Cli, SeedHelperDefaultsAndParses) {
  const char* argv[] = {"prog", "--seed=99"};
  Cli cli(2, argv, {});
  EXPECT_EQ(cli.seed(), 99u);
}

TEST(CliDeathTest, RejectsUnknownOption) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT((Cli(2, argv, {"trials"})), ::testing::ExitedWithCode(2),
              "unknown option");
}

TEST(CliDeathTest, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_EXIT((Cli(2, argv, {})), ::testing::ExitedWithCode(2),
              "unexpected positional");
}

}  // namespace
}  // namespace bfce::util
