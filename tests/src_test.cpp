// Tests for the SRC comparator.
#include "estimators/src_protocol.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bfce.hpp"
#include "math/hypothesis.hpp"
#include "rfid/reader.hpp"
#include "sim/experiment.hpp"

namespace bfce::estimators {
namespace {

TEST(Src, FrameSizeScalesLikeInverseEpsilonSquared) {
  const auto f_005 = SrcEstimator::frame_size(0.05, 0.2, 1.594, 2.75);
  const auto f_010 = SrcEstimator::frame_size(0.10, 0.2, 1.594, 2.75);
  const auto f_020 = SrcEstimator::frame_size(0.20, 0.2, 1.594, 2.75);
  // Halving ε quadruples the frame (up to the e^{−ελ} curvature).
  EXPECT_NEAR(static_cast<double>(f_005) / static_cast<double>(f_010), 4.0,
              0.5);
  EXPECT_NEAR(static_cast<double>(f_010) / static_cast<double>(f_020), 4.0,
              0.7);
}

TEST(Src, FrameSizeGrowsWithCalibration) {
  EXPECT_GT(SrcEstimator::frame_size(0.05, 0.2, 1.594, 3.0),
            SrcEstimator::frame_size(0.05, 0.2, 1.594, 1.0));
}

TEST(Src, RoundCountFollowsThePapersMajorityRule) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT2ApproxNormal, 1);
  for (double delta : {0.05, 0.1, 0.2}) {
    rfid::ReaderContext ctx(pop, 2, rfid::FrameMode::kSampled);
    SrcEstimator est;
    const EstimateOutcome out = est.estimate(ctx, {0.05, delta});
    EXPECT_EQ(out.rounds, math::src_round_count(delta)) << delta;
  }
}

TEST(Src, AccurateAtTheDefaultRequirement) {
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT2ApproxNormal, 3);
  sim::ExperimentConfig cfg;
  cfg.trials = 40;
  cfg.req = {0.05, 0.05};
  cfg.mode = rfid::FrameMode::kSampled;
  cfg.seed = 21;
  const auto records = sim::run_experiment(
      pop, [] { return std::make_unique<SrcEstimator>(); }, cfg);
  const auto summary = sim::summarize_records(records, 0.05);
  const double slack = 3.0 * std::sqrt(0.05 * 0.95 / 40.0);
  EXPECT_LE(summary.violation_rate, 0.05 + slack);
}

TEST(Src, SitsBetweenBfceAndZoeInTime) {
  // Fig 10's ordering: BFCE < SRC < ZOE at (0.05, 0.05).
  const auto pop = rfid::make_population(
      200000, rfid::TagIdDistribution::kT2ApproxNormal, 4);
  rfid::ReaderContext c1(pop, 5, rfid::FrameMode::kSampled);
  SrcEstimator src;
  const double t_src =
      src.estimate(c1, {0.05, 0.05}).airtime.total_seconds(c1.timing());
  EXPECT_GT(t_src, 0.19);  // slower than BFCE's constant time
  EXPECT_LT(t_src, 2.0);   // much faster than ZOE's seconds
}

TEST(Src, TimeRatioToBfceNearThePaperAverage) {
  // "2 times faster than SRC in average": check the calibrated ratio at
  // the headline configuration is roughly 2 (broad tolerance — it is an
  // average across sweeps in the paper).
  const auto pop = rfid::make_population(
      500000, rfid::TagIdDistribution::kT2ApproxNormal, 6);
  rfid::ReaderContext c_src(pop, 7, rfid::FrameMode::kSampled);
  rfid::ReaderContext c_bfce(pop, 7, rfid::FrameMode::kSampled);
  const double t_src = SrcEstimator()
                           .estimate(c_src, {0.05, 0.05})
                           .airtime.total_seconds(c_src.timing());
  const double t_bfce = core::BfceEstimator()
                            .estimate(c_bfce, {0.05, 0.05})
                            .airtime.total_seconds(c_bfce.timing());
  EXPECT_GT(t_src / t_bfce, 1.3);
  EXPECT_LT(t_src / t_bfce, 4.0);
}

TEST(Src, LooserDeltaCutsRounds) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT2ApproxNormal, 8);
  rfid::ReaderContext a(pop, 9, rfid::FrameMode::kSampled);
  rfid::ReaderContext b(pop, 9, rfid::FrameMode::kSampled);
  SrcEstimator est;
  const double t_strict =
      est.estimate(a, {0.05, 0.05}).airtime.total_seconds(a.timing());
  const double t_loose =
      est.estimate(b, {0.05, 0.20}).airtime.total_seconds(b.timing());
  EXPECT_GT(t_strict, 5.0 * t_loose);  // 7 rounds vs 1 round
}

TEST(Src, MedianShieldsAgainstOneBadRound) {
  // Even with an adversarially tiny rough estimate (forcing p = 1 and a
  // saturated frame now and then), the median keeps the estimate finite
  // and positive.
  SrcParams params;
  params.rough = LofParams{32, 1, 32};  // single noisy lottery frame
  SrcEstimator est(params);
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 10);
  for (int i = 0; i < 10; ++i) {
    rfid::ReaderContext ctx(pop, 100 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    const EstimateOutcome out = est.estimate(ctx, {0.1, 0.1});
    EXPECT_GT(out.n_hat, 0.0);
    EXPECT_LT(out.n_hat, 1e9);
  }
}

TEST(Src, NameIsStable) { EXPECT_EQ(SrcEstimator().name(), "SRC"); }

}  // namespace
}  // namespace bfce::estimators
