// Deep tests for the FNEB first-busy-slot estimator.
#include "estimators/fneb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/erf.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

TEST(FnebDeep, FirstBusySlotFollowsTheOrderStatisticLaw) {
  // E[U] ≈ f/(n+1) for the minimum of n uniform slot draws; check both
  // executors against the law through the estimator's own rounds.
  const std::size_t n = 5000;
  const auto pop =
      rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, 1);
  FnebParams params;
  params.frame_size = 1u << 20;
  FnebEstimator est(params);
  // One estimate's Ū is already the average over ~hundreds of rounds.
  rfid::ReaderContext ctx(pop, 2, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.05, 0.05});
  EXPECT_LT(out.relative_error(static_cast<double>(n)), 0.06);
}

TEST(FnebDeep, RoundCountIsTheVarianceBound) {
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 3);
  FnebEstimator est;
  for (const double eps : {0.05, 0.1, 0.2}) {
    rfid::ReaderContext ctx(pop, 4, rfid::FrameMode::kSampled);
    const auto out = est.estimate(ctx, {eps, 0.05});
    const double d = math::confidence_d(0.05);
    EXPECT_EQ(out.rounds,
              static_cast<std::uint32_t>(std::ceil((d / eps) * (d / eps))))
        << eps;
  }
}

TEST(FnebDeep, EarlyTerminationSlotBudget) {
  // Each round listens to ≈ f/(n+1) + 1 slots; the total must be close
  // to rounds × that, far below rounds × f.
  const std::size_t n = 50000;
  const auto pop =
      rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, 5);
  FnebParams params;
  FnebEstimator est(params);
  rfid::ReaderContext ctx(pop, 6, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.05, 0.05});
  const double expected_per_round =
      static_cast<double>(params.frame_size) / (static_cast<double>(n) + 1) +
      1.5;  // +1 busy slot, +0.5 discretisation
  EXPECT_NEAR(static_cast<double>(out.airtime.tag_bits) /
                  static_cast<double>(out.rounds),
              expected_per_round, expected_per_round * 0.3);
}

TEST(FnebDeep, ExactAndSampledMinimaAgree) {
  const auto pop = rfid::make_population(
      10000, rfid::TagIdDistribution::kT1Uniform, 7);
  FnebEstimator est;
  math::RunningStats exact;
  math::RunningStats sampled;
  for (int i = 0; i < 6; ++i) {
    rfid::ReaderContext a(pop, 100 + static_cast<std::uint64_t>(i),
                          rfid::FrameMode::kExact);
    rfid::ReaderContext b(pop, 100 + static_cast<std::uint64_t>(i),
                          rfid::FrameMode::kSampled);
    exact.add(est.estimate(a, {0.15, 0.1}).n_hat);
    sampled.add(est.estimate(b, {0.15, 0.1}).n_hat);
  }
  EXPECT_NEAR(exact.mean(), sampled.mean(), 0.15 * exact.mean());
}

TEST(FnebDeep, UndersizedFrameDegradesGracefully) {
  // n comparable to f: Ū ≈ 0 and the estimator saturates near f instead
  // of exploding.
  FnebParams params;
  params.frame_size = 1024;
  FnebEstimator est(params);
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 8);
  rfid::ReaderContext ctx(pop, 9, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.1, 0.1});
  EXPECT_TRUE(std::isfinite(out.n_hat));
  EXPECT_GT(out.n_hat, 0.0);
  EXPECT_LT(out.n_hat, 5e6);
}

TEST(FnebDeep, SeedBroadcastsDominateItsTime) {
  // FNEB's pathology mirrors ZOE's: per-round (seed+size) broadcasts
  // dwarf the handful of listened slots.
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 10);
  rfid::ReaderContext ctx(pop, 11, rfid::FrameMode::kSampled);
  FnebEstimator est;
  const auto out = est.estimate(ctx, {0.05, 0.05});
  // Per round: 64 broadcast bits (2417 µs) vs ~f/n + 1 ≈ 22 listened
  // slots (415 µs) — broadcasts carry the bulk of the airtime.
  const rfid::TimingModel tm;
  EXPECT_GT(static_cast<double>(out.airtime.reader_bits) * tm.reader_bit_us,
            3.0 * static_cast<double>(out.airtime.tag_bits) * tm.tag_bit_us);
}

}  // namespace
}  // namespace bfce::estimators
