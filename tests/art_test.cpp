// Deep tests for the ART run-length estimator.
#include "estimators/art.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"
#include "rfid/reader.hpp"
#include "util/rng.hpp"

namespace bfce::estimators {
namespace {

using S = rfid::SlotState;

TEST(ArtDeep, RunStatisticOnCraftedPatterns) {
  // Single run covering the whole frame.
  EXPECT_DOUBLE_EQ(
      ArtEstimator::average_busy_run({S::kSingle, S::kSingle, S::kSingle}),
      3.0);
  // Alternating: every run has length 1.
  EXPECT_DOUBLE_EQ(ArtEstimator::average_busy_run(
                       {S::kSingle, S::kIdle, S::kCollision, S::kIdle}),
                   1.0);
  // Leading/trailing idle slots don't create phantom runs.
  EXPECT_DOUBLE_EQ(ArtEstimator::average_busy_run(
                       {S::kIdle, S::kSingle, S::kSingle, S::kIdle}),
                   2.0);
}

TEST(ArtDeep, RunLengthInvertsBernoulliOccupancy) {
  // For i.i.d. busy slots with probability b, E[run] = 1/(1−b); the
  // estimator's b̂ = 1 − 1/r̄ must recover b.
  util::Xoshiro256ss rng(1);
  for (const double b : {0.2, 0.5, 0.8}) {
    double runs_sum = 0.0;
    constexpr int kFrames = 200;
    for (int f = 0; f < kFrames; ++f) {
      std::vector<S> states(2048);
      for (auto& s : states) {
        s = rng.bernoulli(b) ? S::kCollision : S::kIdle;
      }
      runs_sum += ArtEstimator::average_busy_run(states);
    }
    const double r_bar = runs_sum / kFrames;
    EXPECT_NEAR(1.0 - 1.0 / r_bar, b, 0.02) << b;
  }
}

TEST(ArtDeep, SequentialRuleStopsEarlierForLooseTargets) {
  const auto pop = rfid::make_population(
      40000, rfid::TagIdDistribution::kT1Uniform, 2);
  ArtEstimator est;
  rfid::ReaderContext a(pop, 3, rfid::FrameMode::kSampled);
  rfid::ReaderContext b(pop, 3, rfid::FrameMode::kSampled);
  const auto strict = est.estimate(a, {0.02, 0.05});
  const auto loose = est.estimate(b, {0.25, 0.25});
  EXPECT_GT(strict.rounds, 2 * loose.rounds);
}

TEST(ArtDeep, MinRoundsRespected) {
  ArtParams params;
  params.min_rounds = 12;
  ArtEstimator est(params);
  const auto pop = rfid::make_population(
      40000, rfid::TagIdDistribution::kT1Uniform, 4);
  rfid::ReaderContext ctx(pop, 5, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.3, 0.3});
  EXPECT_GE(out.rounds, 12u);
}

TEST(ArtDeep, RoundCapFlagged) {
  ArtParams params;
  params.max_rounds = 4;
  params.min_rounds = 4;
  ArtEstimator est(params);
  const auto pop = rfid::make_population(
      40000, rfid::TagIdDistribution::kT1Uniform, 6);
  rfid::ReaderContext ctx(pop, 7, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.01, 0.01});
  EXPECT_FALSE(out.met_by_design);
}

TEST(ArtDeep, EmptyPopulationYieldsNearZero) {
  const auto pop =
      rfid::make_population(0, rfid::TagIdDistribution::kT1Uniform, 8);
  ArtEstimator est;
  rfid::ReaderContext ctx(pop, 9, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.1, 0.1});
  EXPECT_LT(out.n_hat, 50.0);
}

TEST(ArtDeep, SequentialStoppingDeliversTheTarget) {
  const auto pop = rfid::make_population(
      60000, rfid::TagIdDistribution::kT1Uniform, 10);
  ArtEstimator est;
  math::RunningStats err;
  for (int i = 0; i < 20; ++i) {
    rfid::ReaderContext ctx(pop, 200 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    err.add(est.estimate(ctx, {0.05, 0.05}).relative_error(60000.0));
  }
  EXPECT_LT(err.mean(), 0.05);
}

}  // namespace
}  // namespace bfce::estimators
