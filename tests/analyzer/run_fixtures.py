#!/usr/bin/env python3
"""Self-test corpus for tools/analyze.

Each directory under tests/analyzer/fixtures/ is a miniature repo root
(with its own src/) for one rule family.  Files named good_* must
produce zero findings; files named bad_* declare the exact rule set
they must trip via `// expect: <rule-id>` comments.  On top of the
per-file checks this runner asserts the documented exit codes
(0 = clean, 1 = findings, 2 = usage error) and structurally validates
the SARIF 2.1.0 output.

Today's date is pinned (--today) so expiry fixtures never rot.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
ANALYZER = [sys.executable, os.path.join(REPO, "tools", "analyze")]
FIXTURES = os.path.join(HERE, "fixtures")
TODAY = "2026-01-01"  # pinned: fixture expiry dates are relative to this

FINDING_RE = re.compile(
    r"^(?P<rel>[^:]+):(?P<line>\d+):(?P<col>\d+): error: "
    r"\[(?P<rule>[a-z0-9-]+)\] ")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z0-9-]+)")

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}")


def run_analyzer(root: str, extra: list[str] | None = None,
                 ) -> tuple[int, str, str]:
    cmd = ANALYZER + ["--root", root, "--today", TODAY] + (extra or [])
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout, proc.stderr


def parse_findings(stdout: str) -> dict[str, set[str]]:
    """Map of repo-relative file -> set of rules that fired in it."""
    by_file: dict[str, set[str]] = {}
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            by_file.setdefault(m.group("rel"), set()).add(m.group("rule"))
    return by_file


def expectations(family_dir: str) -> dict[str, set[str]]:
    exp: dict[str, set[str]] = {}
    for dirpath, _dirnames, filenames in os.walk(family_dir):
        for fname in sorted(filenames):
            if not fname.endswith((".cpp", ".hpp", ".h")):
                continue
            path = os.path.join(dirpath, fname)
            rel = os.path.relpath(path, family_dir).replace(os.sep, "/")
            with open(path, encoding="utf-8") as fh:
                rules = set(EXPECT_RE.findall(fh.read()))
            exp[rel] = rules
    return exp


def check_family(family: str) -> None:
    family_dir = os.path.join(FIXTURES, family)
    code, stdout, stderr = run_analyzer(family_dir)
    if stderr.strip():
        fail(f"{family}: analyzer wrote to stderr: {stderr.strip()}")
    actual = parse_findings(stdout)
    exp = expectations(family_dir)
    any_expected = any(exp.values())
    want_code = 1 if any_expected else 0
    if code != want_code:
        fail(f"{family}: exit code {code}, want {want_code}\n{stdout}")
    for rel, rules in sorted(exp.items()):
        base = os.path.basename(rel)
        got = actual.pop(rel, set())
        if base.startswith("good_") or not rules:
            if got:
                fail(f"{family}/{rel}: expected clean, got {sorted(got)}")
        elif got != rules:
            fail(f"{family}/{rel}: expected rules {sorted(rules)}, "
                 f"got {sorted(got)}")
    for rel, got in sorted(actual.items()):
        fail(f"{family}/{rel}: unexpected findings {sorted(got)}")
    if not failures:
        print(f"ok: {family} ({len(exp)} fixtures)")


def check_exit_codes() -> None:
    """The documented exit-code contract, exercised end to end."""
    supp = os.path.join(FIXTURES, "suppression")
    # 0: a clean subset (the two good fixtures only).
    code, _, _ = run_analyzer(supp, ["src/good_block_comment.cpp",
                                     "src/good_inline.cpp"])
    if code != 0:
        fail(f"exit-code contract: clean subset returned {code}, want 0")
    # 1: a stale suppression alone fails the build.
    code, out, _ = run_analyzer(supp, ["src/bad_stale.cpp"])
    if code != 1 or "suppression-stale" not in out:
        fail(f"exit-code contract: stale suppression returned {code} "
             f"(want 1 with suppression-stale)")
    # 1: a missing expiry alone fails the build.
    code, out, _ = run_analyzer(supp, ["src/bad_missing_expiry.cpp"])
    if code != 1 or "suppression-missing-expiry" not in out:
        fail(f"exit-code contract: missing expiry returned {code} "
             f"(want 1 with suppression-missing-expiry)")
    # 2: usage error (malformed --today).
    cmd = ANALYZER + ["--root", supp, "--today", "not-a-date"]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    if proc.returncode != 2:
        fail(f"exit-code contract: bad --today returned {proc.returncode}, "
             f"want 2")
    print("ok: exit-code contract")


def check_sarif() -> None:
    """Structural validation of the SARIF 2.1.0 output on a family that
    fires several rules."""
    family_dir = os.path.join(FIXTURES, "determinism")
    with tempfile.TemporaryDirectory() as tmp:
        out_path = os.path.join(tmp, "out.sarif")
        code, _, _ = run_analyzer(family_dir, ["--sarif", out_path])
        if code != 1:
            fail(f"sarif: determinism family returned {code}, want 1")
            return
        with open(out_path, encoding="utf-8") as fh:
            doc = json.load(fh)
    if doc.get("version") != "2.1.0":
        fail(f"sarif: version {doc.get('version')!r}, want '2.1.0'")
    if "sarif-schema-2.1.0" not in doc.get("$schema", ""):
        fail("sarif: $schema does not reference the 2.1.0 schema")
    runs = doc.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail("sarif: expected exactly one run")
        return
    run = runs[0]
    driver = run.get("tool", {}).get("driver", {})
    rules = driver.get("rules", [])
    if driver.get("name") != "bfce-analyze" or not rules:
        fail("sarif: tool.driver must carry a name and a rule catalogue")
    rule_ids = [r.get("id") for r in rules]
    if len(rule_ids) != len(set(rule_ids)):
        fail("sarif: duplicate rule ids in the driver catalogue")
    results = run.get("results", [])
    if not results:
        fail("sarif: no results for a family full of bad fixtures")
    for res in results:
        rid = res.get("ruleId")
        idx = res.get("ruleIndex")
        if rid not in rule_ids:
            fail(f"sarif: result ruleId {rid!r} not in driver catalogue")
        elif rule_ids[idx] != rid:
            fail(f"sarif: ruleIndex {idx} does not point at {rid!r}")
        locs = res.get("locations", [])
        if not locs:
            fail(f"sarif: result for {rid!r} has no locations")
            continue
        phys = locs[0].get("physicalLocation", {})
        art = phys.get("artifactLocation", {})
        region = phys.get("region", {})
        if art.get("uriBaseId") != "SRCROOT" or not art.get("uri"):
            fail(f"sarif: result for {rid!r} lacks a SRCROOT-relative uri")
        if not isinstance(region.get("startLine"), int) or \
                region["startLine"] < 1:
            fail(f"sarif: result for {rid!r} lacks a 1-based startLine")
        if res.get("level") != "error":
            fail(f"sarif: result for {rid!r} must be level=error")
    bases = run.get("originalUriBaseIds", {})
    if "SRCROOT" not in bases:
        fail("sarif: originalUriBaseIds must define SRCROOT")
    if not failures:
        print(f"ok: sarif structure ({len(results)} results)")


def main() -> int:
    families = sorted(
        d for d in os.listdir(FIXTURES)
        if os.path.isdir(os.path.join(FIXTURES, d)))
    if not families:
        print("FAIL: no fixture families found")
        return 1
    for family in families:
        check_family(family)
    check_exit_codes()
    check_sarif()
    if failures:
        print(f"\n{len(failures)} fixture check(s) failed")
        return 1
    print(f"\nall fixture checks passed ({len(families)} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
