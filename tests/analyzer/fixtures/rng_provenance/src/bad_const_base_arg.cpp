// The splitmix_at base arrives through a parameter, but the only call
// site passes a bare constant — blamed at the call site.
#include <cstddef>
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

void fill_raw(std::uint64_t base, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(util::splitmix_at(base, i));
  }
}

void drive_raw(double* out, std::size_t n) {
  fill_raw(4242ULL, out, n);  // expect: rng-provenance
}

}  // namespace fx
