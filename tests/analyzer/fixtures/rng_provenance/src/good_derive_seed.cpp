// Seed flows from the caller's master seed through util::derive_seed:
// the canonical pattern.
#include <cstddef>
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

void sample(double* out, std::size_t n, std::uint64_t master) {
  util::Xoshiro256ss rng(util::derive_seed(master, 7));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rng.uniform();
  }
}

}  // namespace fx
