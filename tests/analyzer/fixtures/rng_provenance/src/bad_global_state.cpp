// A function that draws randomness AND mutates namespace-scope state:
// the hidden cross-call coupling the purity rule exists to catch.
#include <cstddef>
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

std::uint64_t g_hits = 0;

double biased_draw(util::Xoshiro256ss& rng) {  // expect: rng-purity
  const double x = rng.uniform();
  if (x > 0.5) {
    g_hits += 1;
  }
  return x;
}

}  // namespace fx
