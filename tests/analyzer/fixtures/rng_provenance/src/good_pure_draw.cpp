// Drawing randomness is fine when the function touches only its own
// locals and parameters (const namespace-scope data does not count as
// mutable state).
#include <cstddef>
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

constexpr double kAcceptance = 0.5;

std::size_t count_accepted(util::Xoshiro256ss& rng, std::size_t n) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(kAcceptance)) {
      ++hits;
    }
  }
  return hits;
}

}  // namespace fx
