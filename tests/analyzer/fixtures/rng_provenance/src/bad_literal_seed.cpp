// A Xoshiro256ss seeded with a bare literal: a stealth constant seed
// with no derivation from SeedMixer / derive_seed.
#include <cstddef>
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

void sample(double* out, std::size_t n) {
  util::Xoshiro256ss rng(0x1234ULL);  // expect: rng-provenance
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rng.uniform();
  }
}

}  // namespace fx
