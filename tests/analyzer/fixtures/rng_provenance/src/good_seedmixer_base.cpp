// A splitmix_at counter base whose provenance crosses a function
// boundary: the parameter obligation is discharged at the call site,
// where the value comes from a SeedMixer-sourcing helper.
#include <cstddef>
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

std::uint64_t frame_base(std::uint64_t seed) {
  util::SeedMixer mix(seed);
  mix.absorb(0x42ULL);
  return mix.value();
}

void fill(std::uint64_t base, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(util::splitmix_at(base, i));
  }
}

void drive(double* out, std::size_t n, std::uint64_t seed) {
  fill(frame_base(seed), out, n);
}

}  // namespace fx
