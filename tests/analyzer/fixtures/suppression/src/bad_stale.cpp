// The cited rule does not fire at the covered lines: the suppression
// is stale and must be deleted.
#include <cstdint>

namespace fx {

std::uint64_t plain_add(std::uint64_t a, std::uint64_t b) {
  // lint:allow(foreign-rng) owner=carol expires=2099-12-31 leftover from a deleted benchmark
  return a + b;  // expect: suppression-stale
}

}  // namespace fx
