// Citing a rule id that is not in the catalogue.
#include <cstdint>

namespace fx {

std::uint64_t typo_rule(std::uint64_t a) {
  // lint:allow(foreign-rngg) owner=frank expires=2099-12-31 fat-fingered the rule id
  return a * 2;  // expect: suppression-unknown-rule
}

}  // namespace fx
