// Owner and reason present, expiry missing: suppressions may not be
// open-ended.
#include <random>

namespace fx {

int no_expiry() {
  // lint:allow(foreign-rng) owner=dave vendored comparison harness
  std::mt19937 engine(5);  // expect: suppression-missing-expiry
  return static_cast<int>(engine());
}

}  // namespace fx
