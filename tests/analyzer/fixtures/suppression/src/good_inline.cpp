// Inline form: the suppression rides the violating line itself.
#include <random>

namespace fx {

unsigned inline_reference() {
  std::mt19937_64 engine(7);  // lint:allow(foreign-rng) owner=bob expires=2099-06-30 perf baseline needs the stdlib engine
  return static_cast<unsigned>(engine());
}

}  // namespace fx
