// The waiver ran out: the violation is still silenced, but the expired
// suppression itself fails the build until re-justified.
#include <random>

namespace fx {

int expired_waiver() {
  // lint:allow(foreign-rng) owner=erin expires=2020-01-01 temporary parity check against stdlib
  std::mt19937 engine(9);  // expect: suppression-expired
  return static_cast<int>(engine());
}

}  // namespace fx
