// No owner and no justification text: nobody is on the hook to
// re-justify this waiver.
#include <random>

namespace fx {

int anonymous_waiver() {
  // lint:allow(foreign-rng) expires=2099-12-31
  std::mt19937 engine(11);  // expect: suppression-missing-owner
  return static_cast<int>(engine());  // expect: suppression-missing-reason
}

}  // namespace fx
