// A well-formed suppression: cites a rule that really fires on the
// covered line, names an owner, carries an unexpired expiry and a
// justification. Silences the finding; no hygiene complaint.
#include <random>

namespace fx {

int reference_draw() {
  // lint:allow(foreign-rng) owner=alice expires=2099-12-31 cross-checking against the reference implementation
  std::mt19937 engine(123);
  return static_cast<int>(engine());
}

}  // namespace fx
