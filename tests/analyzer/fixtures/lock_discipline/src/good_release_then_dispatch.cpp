// Manual unique_lock release before fanning out: the held-interval
// model must see the gap and stay quiet (this is the worker_loop
// pattern in the real service).
#include <cstddef>
#include <mutex>
#include "util/parallel.hpp"

namespace fx {

class Batcher {
 public:
  void run(std::size_t n);

 private:
  std::mutex gate_;
  std::size_t jobs_ = 0;
};

void Batcher::run(std::size_t n) {
  std::unique_lock<std::mutex> lk(gate_);
  jobs_ += n;
  lk.unlock();
  util::parallel_for(std::size_t{0}, n, [](std::size_t) {});
  lk.lock();
  jobs_ -= n;
}

}  // namespace fx
