// Holding m_ while calling a method that re-acquires m_: self-deadlock
// on a non-recursive mutex, found through the call graph.
#include <mutex>

namespace fx {

class Meter {
 public:
  void bump();
  void flush();

 private:
  std::mutex m_;
  int n_ = 0;
};

void Meter::flush() {
  std::lock_guard<std::mutex> g(m_);
  n_ = 0;
}

void Meter::bump() {
  std::lock_guard<std::mutex> g(m_);
  ++n_;
  flush();  // expect: lock-order
}

}  // namespace fx
