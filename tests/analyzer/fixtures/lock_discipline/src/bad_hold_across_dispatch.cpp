// A lock_guard still held at the parallel_for fan-out: the worker team
// contends on (or deadlocks against) the caller's mutex.
#include <cstddef>
#include <mutex>
#include "util/parallel.hpp"

namespace fx {

class Pool {
 public:
  void fan(std::size_t n);

 private:
  std::mutex m_;
  std::size_t done_ = 0;
};

void Pool::fan(std::size_t n) {
  std::lock_guard<std::mutex> g(m_);
  util::parallel_for(std::size_t{0}, n,  // expect: lock-across-dispatch
                     [](std::size_t) {});
  done_ += n;
}

}  // namespace fx
