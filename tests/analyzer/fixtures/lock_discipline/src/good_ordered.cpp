// Two mutexes, always acquired in the same order: one consistent
// global order, nothing to report.
#include <mutex>

namespace fx {

class Ledger {
 public:
  void credit();
  void debit();

 private:
  std::mutex accounts_;
  std::mutex journal_;
  int balance_ = 0;
  int entries_ = 0;
};

void Ledger::credit() {
  std::lock_guard<std::mutex> a(accounts_);
  std::lock_guard<std::mutex> j(journal_);
  ++balance_;
  ++entries_;
}

void Ledger::debit() {
  std::lock_guard<std::mutex> a(accounts_);
  std::lock_guard<std::mutex> j(journal_);
  --balance_;
  ++entries_;
}

}  // namespace fx
