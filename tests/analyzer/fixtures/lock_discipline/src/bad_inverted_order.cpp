// Classic ABBA inversion: up() takes map_ then stats_, down() takes
// stats_ then map_.
#include <mutex>

namespace fx {

class Router {
 public:
  void up();
  void down();

 private:
  std::mutex map_;
  std::mutex stats_;
  int routes_ = 0;
  int hops_ = 0;
};

void Router::up() {
  std::lock_guard<std::mutex> m(map_);
  std::lock_guard<std::mutex> s(stats_);  // expect: lock-order
  ++routes_;
  ++hops_;
}

void Router::down() {
  std::lock_guard<std::mutex> s(stats_);
  std::lock_guard<std::mutex> m(map_);
  --routes_;
  ++hops_;
}

}  // namespace fx
