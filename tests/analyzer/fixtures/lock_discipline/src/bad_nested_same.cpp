// Directly nesting two guards on the same non-recursive mutex.
#include <mutex>

namespace fx {

class Cache {
 public:
  void purge();

 private:
  std::mutex m_;
  int live_ = 0;
};

void Cache::purge() {
  std::lock_guard<std::mutex> outer(m_);
  std::lock_guard<std::mutex> inner(m_);  // expect: lock-order
  live_ = 0;
}

}  // namespace fx
