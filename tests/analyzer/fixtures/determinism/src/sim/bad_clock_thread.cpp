// Wall-clock reads and raw threads outside the allowlisted layers.
#include <chrono>
#include <thread>

namespace fx {

double stamp() {
  const auto t0 = std::chrono::steady_clock::now();  // expect: clock-now
  std::thread worker([] {});  // expect: raw-thread
  worker.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace fx
