// Function-local mutable static in estimator territory (src/core/).
namespace fx {

int next_ticket() {
  static int counter = 0;  // expect: static-local-state
  return ++counter;
}

}  // namespace fx
