// The classic C pattern: wall-clock seed into the libc generator.
#include <cstdlib>
#include <ctime>

namespace fx {

int legacy_sample() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // expect: libc-rand
  return std::rand() % 6;  // expect: wall-clock-seed
}

}  // namespace fx
