// Never-seeded Xoshiro streams: a local, and a member whose
// constructor forgets it in the init-list.
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

class Drifter {
 public:
  explicit Drifter(std::uint64_t gain) : gain_(gain) {}

  double step() { return gain_ * rng_.uniform(); }

 private:
  double gain_;
  util::Xoshiro256ss rng_;  // expect: unseeded-rng
};

double once() {
  util::Xoshiro256ss rng;  // expect: unseeded-rng
  return rng.uniform();
}

}  // namespace fx
