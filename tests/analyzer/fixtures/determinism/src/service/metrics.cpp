// Allowlisted territory: src/service/metrics.cpp may read wall clocks
// (latency is the product, not an input) and src/service/ may spawn
// threads. Nothing may fire here.
#include <chrono>
#include <thread>

namespace fx {

using Clock = std::chrono::steady_clock;

double snapshot_age_s(Clock::time_point started) {
  const auto now_tp = Clock::now();
  return std::chrono::duration<double>(now_tp - started).count();
}

void spawn_reporter() {
  std::thread t([] {});
  t.detach();
}

}  // namespace fx
