// Ambient entropy and a foreign engine in one go.
#include <random>

namespace fx {

int ambient_draw() {
  std::random_device rd;        // expect: random-device
  std::mt19937 gen(rd());       // expect: foreign-rng
  return static_cast<int>(gen());
}

}  // namespace fx
