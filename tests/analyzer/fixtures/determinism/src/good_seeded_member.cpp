// A Xoshiro member seeded in the constructor init-list: the semantic
// unseeded-rng rule recognises this without any lint:allow.
#include <cstdint>
#include "util/rng.hpp"

namespace fx {

class Tracker {
 public:
  explicit Tracker(std::uint64_t seed)
      : rng_(util::derive_seed(seed, 0x7EA3ULL)) {}

  double step() { return rng_.uniform(); }

 private:
  util::Xoshiro256ss rng_;
};

}  // namespace fx
