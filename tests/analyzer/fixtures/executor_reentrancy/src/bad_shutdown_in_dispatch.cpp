// Tearing down the executor from inside one of its own workers: the
// zero-argument shutdown() joins every worker thread, including the
// lane executing this lambda — a self-join.
#include <cstddef>
#include "util/executor.hpp"
#include "util/parallel.hpp"

namespace fx {

void drain_and_stop(std::size_t n) {
  util::parallel_for(std::size_t{0}, n, [](std::size_t i) {
    if (i == 0) {
      util::Executor::instance().shutdown();  // expect: executor-reentrancy
    }
  });
}

}  // namespace fx
