// The blocking join hides one call deep: the dispatched lambda calls a
// repo helper that waits on a condition variable. The call-graph
// closure must blame the call site inside the lambda.
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include "util/parallel.hpp"

namespace fx {

class Buffered {
 public:
  void flush_all(std::size_t n);

 private:
  void drain_queue();

  std::condition_variable cv_;
  std::mutex m_;
};

void Buffered::drain_queue() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk);
}

void Buffered::flush_all(std::size_t n) {
  util::parallel_for(std::size_t{0}, n, [&](std::size_t) {
    drain_queue();  // expect: executor-reentrancy
  });
}

}  // namespace fx
