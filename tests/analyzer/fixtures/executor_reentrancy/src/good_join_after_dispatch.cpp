// The joins live on the dispatching side, after parallel_for returns,
// and the condition-variable wait sits in a plain (never-dispatched)
// function: both are the sanctioned shape and must stay quiet.
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include "util/parallel.hpp"

namespace fx {

class Harvest {
 public:
  void run(std::size_t n);
  void block_until_ready();

 private:
  Channel feed_;
  std::condition_variable cv_;
  std::mutex m_;
};

void Harvest::run(std::size_t n) {
  util::parallel_for(std::size_t{0}, n, [](std::size_t) {});
  feed_.join();
}

void Harvest::block_until_ready() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk);
}

}  // namespace fx
