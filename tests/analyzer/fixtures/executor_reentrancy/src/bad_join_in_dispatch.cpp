// A blocking join inside a dispatched lambda: the worker lane running
// the lambda stalls until some other thread finishes — and deadlocks
// outright if that thread is waiting for this dispatch to drain.
#include <cstddef>
#include "util/parallel.hpp"

namespace fx {

class Collector {
 public:
  void gather(std::size_t n);

 private:
  Channel feed_;
};

void Collector::gather(std::size_t n) {
  util::parallel_for(std::size_t{0}, n, [&](std::size_t) {
    feed_.join();  // expect: executor-reentrancy
  });
}

}  // namespace fx
