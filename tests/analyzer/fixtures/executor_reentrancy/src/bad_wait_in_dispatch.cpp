// A condition-variable wait inside a dispatched lambda parks the
// worker lane until someone signals — with a one-lane pool (or when
// the signaller is queued behind this dispatch) nobody ever does.
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include "util/parallel.hpp"

namespace fx {

class Gate {
 public:
  void run(std::size_t n);

 private:
  std::condition_variable cv_;
  std::mutex m_;
};

void Gate::run(std::size_t n) {
  util::parallel_for(std::size_t{0}, n, [&](std::size_t) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk);  // expect: executor-reentrancy
  });
}

}  // namespace fx
