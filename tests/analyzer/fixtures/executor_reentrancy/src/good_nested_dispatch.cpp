// Nested parallel_for inside a dispatched lambda is the sanctioned
// path: the executor is nesting-safe (the inner dispatch runs inline
// on the worker's own lane), so this must stay quiet.
#include <cstddef>
#include "util/parallel.hpp"

namespace fx {

inline std::size_t square(std::size_t v) { return v * v; }

void tile_sweep(std::size_t rows, std::size_t cols) {
  util::parallel_for(std::size_t{0}, rows, [&](std::size_t r) {
    util::parallel_for(std::size_t{0}, cols, [&](std::size_t c) {
      volatile std::size_t sink = square(r) + square(c);
      (void)sink;
    });
  });
}

}  // namespace fx
