// Also fine: a stream constructed *inside* the region from the region
// index — each shard owns its stream, so the schedule cannot reorder
// draws.
#include <cstddef>
#include <cstdint>
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fx {

void jitter(double* out, std::size_t n, std::uint64_t master) {
  util::parallel_for(std::size_t{0}, n, [&](std::size_t t) {
    util::Xoshiro256ss local(util::derive_seed(master, t));
    out[t] = local.uniform();
  });
}

}  // namespace fx
