// The caller's stream advanced inside the sharded region: draw order
// now depends on shard count and schedule.
#include <cstddef>
#include <cstdint>
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fx {

void corrupt(double* out, std::size_t n, std::uint64_t master) {
  util::Xoshiro256ss rng(util::derive_seed(master, 0));
  util::parallel_for(std::size_t{0}, n, [&](std::size_t t) {
    out[t] = rng.uniform();  // expect: caller-draw-in-shard
  });
}

}  // namespace fx
