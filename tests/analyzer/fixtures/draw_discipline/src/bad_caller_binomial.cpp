// Passing the caller's stream into draw_binomial from inside the
// region is the same defect through a helper.
#include <cstddef>
#include <cstdint>
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fx {

void thin(std::uint32_t* hits, std::size_t n, std::uint64_t master) {
  util::Xoshiro256ss rng(util::derive_seed(master, 1));
  util::parallel_for(std::size_t{0}, n, [&](std::size_t t) {
    hits[t] = util::draw_binomial(16, 0.5, rng);  // expect: caller-draw-in-shard
  });
}

}  // namespace fx
