// The sanctioned sharded pattern: one SeedMixer-derived base outside,
// pure counter-addressed splitmix_at draws inside the region.
#include <cstddef>
#include <cstdint>
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fx {

void synth(double* out, std::size_t n, std::uint64_t seed) {
  util::SeedMixer mix(seed);
  mix.absorb(n);
  const std::uint64_t base = mix.value();
  util::parallel_for(std::size_t{0}, n, [&](std::size_t t) {
    out[t] = static_cast<double>(util::splitmix_at(base, t));
  });
}

}  // namespace fx
