// Tests for the T1/T2/T3 tagID generators (Fig 6 inputs).
#include "rfid/population.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "math/stats.hpp"

namespace bfce::rfid {
namespace {

constexpr double kIdMax = 1e15;

TEST(Population, RequestedSizeAndUniqueIds) {
  for (const TagIdDistribution dist : kAllDistributions) {
    const TagPopulation pop = make_population(20000, dist, 1);
    EXPECT_EQ(pop.size(), 20000u);
    std::unordered_set<std::uint64_t> ids;
    for (const Tag& t : pop.tags()) ids.insert(t.id);
    EXPECT_EQ(ids.size(), pop.size()) << to_string(dist);
  }
}

TEST(Population, IdsWithinPaperRange) {
  for (const TagIdDistribution dist : kAllDistributions) {
    const TagPopulation pop = make_population(5000, dist, 2);
    for (const Tag& t : pop.tags()) {
      EXPECT_GE(t.id, 1u);
      EXPECT_LE(static_cast<double>(t.id), kIdMax);
    }
  }
}

TEST(Population, DeterministicInSeed) {
  const TagPopulation a = make_population(1000, TagIdDistribution::kT1Uniform, 7);
  const TagPopulation b = make_population(1000, TagIdDistribution::kT1Uniform, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].rn, b[i].rn);
  }
}

TEST(Population, DiffersAcrossSeeds) {
  const TagPopulation a = make_population(1000, TagIdDistribution::kT1Uniform, 7);
  const TagPopulation b = make_population(1000, TagIdDistribution::kT1Uniform, 8);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id == b[i].id) ++same;
  }
  EXPECT_LT(same, 5u);
}

TEST(Population, EmptyPopulation) {
  const TagPopulation pop =
      make_population(0, TagIdDistribution::kT3Normal, 1);
  EXPECT_EQ(pop.size(), 0u);
}

// Distribution-shape checks exploit the known standard deviations of the
// three laws over [0, range]: uniform → range/√12 ≈ 0.289·range,
// Irwin–Hall(3)/3 → range/6 ≈ 0.167·range, clipped normal → range/8 =
// 0.125·range.
double relative_stddev(TagIdDistribution dist) {
  const TagPopulation pop = make_population(50000, dist, 3);
  math::RunningStats rs;
  for (const Tag& t : pop.tags()) rs.add(static_cast<double>(t.id));
  return rs.stddev() / kIdMax;
}

TEST(Population, T1IsSpreadLikeUniform) {
  EXPECT_NEAR(relative_stddev(TagIdDistribution::kT1Uniform), 0.2887, 0.01);
}

TEST(Population, T2IsBellShapedButWiderThanT3) {
  const double t2 = relative_stddev(TagIdDistribution::kT2ApproxNormal);
  const double t3 = relative_stddev(TagIdDistribution::kT3Normal);
  EXPECT_NEAR(t2, 1.0 / 6.0, 0.01);
  EXPECT_NEAR(t3, 0.125, 0.01);
  EXPECT_GT(t2, t3);
}

TEST(Population, BellDistributionsCenterMidRange) {
  for (const TagIdDistribution dist :
       {TagIdDistribution::kT2ApproxNormal, TagIdDistribution::kT3Normal}) {
    const TagPopulation pop = make_population(50000, dist, 4);
    math::RunningStats rs;
    for (const Tag& t : pop.tags()) rs.add(static_cast<double>(t.id));
    EXPECT_NEAR(rs.mean() / kIdMax, 0.5, 0.01) << to_string(dist);
  }
}

TEST(Population, RnValuesLookRandom) {
  // The manufacture-time RN32 must cover the word; a stuck generator
  // would collapse the lightweight hash.
  const TagPopulation pop =
      make_population(10000, TagIdDistribution::kT1Uniform, 5);
  std::unordered_set<std::uint32_t> rns;
  for (const Tag& t : pop.tags()) rns.insert(t.rn);
  EXPECT_GT(rns.size(), 9960u);  // ~10 birthday collisions expected in 2^32
}

TEST(Population, ToStringNames) {
  EXPECT_EQ(to_string(TagIdDistribution::kT1Uniform), "T1");
  EXPECT_EQ(to_string(TagIdDistribution::kT2ApproxNormal), "T2");
  EXPECT_EQ(to_string(TagIdDistribution::kT3Normal), "T3");
}

}  // namespace
}  // namespace bfce::rfid
