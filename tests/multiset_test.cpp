// Tests for multi-set estimation over aligned Bloom snapshots.
#include "core/multiset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rfid/population.hpp"

namespace bfce::core {
namespace {

/// Two populations sharing `common` tags, with `only_a`/`only_b`
/// exclusive tags each.
struct TwoSets {
  rfid::TagPopulation a;
  rfid::TagPopulation b;
};

TwoSets make_sets(std::size_t common, std::size_t only_a,
                  std::size_t only_b, std::uint64_t seed = 1) {
  const auto all = rfid::make_population(
      common + only_a + only_b, rfid::TagIdDistribution::kT1Uniform, seed);
  std::vector<rfid::Tag> a;
  std::vector<rfid::Tag> b;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i < common) {
      a.push_back(all[i]);
      b.push_back(all[i]);
    } else if (i < common + only_a) {
      a.push_back(all[i]);
    } else {
      b.push_back(all[i]);
    }
  }
  return TwoSets{rfid::TagPopulation(std::move(a)),
                 rfid::TagPopulation(std::move(b))};
}

struct Snapshots {
  util::BitVector a;
  util::BitVector b;
  DifferentialConfig cfg;
};

Snapshots snap(const TwoSets& sets, double n_expected,
               std::uint64_t seed = 2) {
  Snapshots s;
  s.cfg.tune_for(n_expected);
  const rfid::Channel ch;
  util::Xoshiro256ss rng(seed);
  s.a = take_snapshot(sets.a, s.cfg, ch, rng);
  s.b = take_snapshot(sets.b, s.cfg, ch, rng);
  return s;
}

TEST(Multiset, MergeEqualsUnionSnapshot) {
  // The algebraic heart: OR of aligned snapshots == snapshot of the
  // union population, bit for bit.
  const TwoSets sets = make_sets(3000, 2000, 1000);
  const Snapshots s = snap(sets, 6000.0);
  std::vector<rfid::Tag> union_tags(sets.a.tags());
  for (std::size_t i = 3000; i < sets.b.size(); ++i) {
    union_tags.push_back(sets.b[i]);
  }
  const rfid::TagPopulation union_pop{std::move(union_tags)};
  const rfid::Channel ch;
  util::Xoshiro256ss rng(3);
  const auto union_snap = take_snapshot(union_pop, s.cfg, ch, rng);
  const auto merged = merge_snapshots({&s.a, &s.b}, s.cfg);
  ASSERT_EQ(merged.size(), union_snap.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.get(i), union_snap.get(i)) << i;
  }
}

TEST(Multiset, UnionEstimateIsAccurate) {
  const TwoSets sets = make_sets(5000, 4000, 3000);  // union 12000
  const Snapshots s = snap(sets, 12000.0);
  EXPECT_NEAR(estimate_union(s.a, s.b, s.cfg), 12000.0, 12000.0 * 0.1);
}

TEST(Multiset, IntersectionByInclusionExclusion) {
  const TwoSets sets = make_sets(6000, 3000, 2000);
  const Snapshots s = snap(sets, 11000.0);
  EXPECT_NEAR(estimate_intersection(s.a, s.b, s.cfg), 6000.0,
              6000.0 * 0.25);
}

TEST(Multiset, DisjointSetsHaveNearZeroIntersection) {
  const TwoSets sets = make_sets(0, 5000, 5000);
  const Snapshots s = snap(sets, 10000.0);
  EXPECT_LT(estimate_intersection(s.a, s.b, s.cfg), 600.0);
  EXPECT_GE(estimate_intersection(s.a, s.b, s.cfg), 0.0);  // clamped
}

TEST(Multiset, IdenticalSetsHaveJaccardOne) {
  const TwoSets sets = make_sets(8000, 0, 0);
  const Snapshots s = snap(sets, 8000.0);
  EXPECT_GT(estimate_jaccard(s.a, s.b, s.cfg), 0.95);
  EXPECT_LE(estimate_jaccard(s.a, s.b, s.cfg), 1.0);
}

TEST(Multiset, JaccardOrdersOverlapLevels) {
  const Snapshots high = snap(make_sets(8000, 1000, 1000, 5), 10000.0, 6);
  const Snapshots low = snap(make_sets(1000, 8000, 8000, 7), 17000.0, 8);
  EXPECT_GT(estimate_jaccard(high.a, high.b, high.cfg),
            2.0 * estimate_jaccard(low.a, low.b, low.cfg));
}

TEST(Multiset, ManyWaySnapshotsMerge) {
  // Five disjoint 2000-tag warehouses: union of all five ≈ 10000.
  DifferentialConfig cfg;
  cfg.tune_for(10000.0);
  const rfid::Channel ch;
  util::Xoshiro256ss rng(9);
  std::vector<util::BitVector> snaps;
  const auto all = rfid::make_population(
      10000, rfid::TagIdDistribution::kT1Uniform, 10);
  for (int s = 0; s < 5; ++s) {
    std::vector<rfid::Tag> part(all.tags().begin() + s * 2000,
                                all.tags().begin() + (s + 1) * 2000);
    snaps.push_back(
        take_snapshot(rfid::TagPopulation{std::move(part)}, cfg, ch, rng));
  }
  std::vector<const util::BitVector*> ptrs;
  for (const auto& s : snaps) ptrs.push_back(&s);
  const double n_union =
      estimate_snapshot(merge_snapshots(ptrs, cfg), cfg);
  EXPECT_NEAR(n_union, 10000.0, 10000.0 * 0.1);
}

TEST(Multiset, SaturatedMergeClampsFinite) {
  DifferentialConfig cfg;  // p = 1 ⇒ saturated at this n
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 11);
  const rfid::Channel ch;
  util::Xoshiro256ss rng(12);
  const auto s = take_snapshot(pop, cfg, ch, rng);
  const double est = estimate_snapshot(s, cfg);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GT(est, 0.0);
}

}  // namespace
}  // namespace bfce::core
