// Tests for the SPRT threshold query.
#include "core/threshold.hpp"

#include <gtest/gtest.h>

#include "rfid/reader.hpp"

namespace bfce::core {
namespace {

ThresholdAnswer ask(std::size_t n, double threshold, std::uint64_t seed,
                    double gamma = 1.5) {
  const auto pop =
      rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, seed);
  rfid::ReaderContext ctx(pop, seed + 1, rfid::FrameMode::kSampled);
  ThresholdQuery q;
  q.threshold = threshold;
  q.gamma = gamma;
  return threshold_query(ctx, q);
}

TEST(Threshold, ClearlyAboveSaysAbove) {
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto ans = ask(50000, 10000, 100 + s);
    EXPECT_TRUE(ans.above) << s;
    EXPECT_TRUE(ans.decisive) << s;
  }
}

TEST(Threshold, ClearlyBelowSaysBelow) {
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto ans = ask(2000, 10000, 200 + s);
    EXPECT_FALSE(ans.above) << s;
    EXPECT_TRUE(ans.decisive) << s;
  }
}

TEST(Threshold, ErrorRatesHonourAlphaBeta) {
  // n exactly at the band edges: the SPRT's guarantees apply. Run a
  // batch at n = T·γ and count "below" verdicts (β errors).
  int beta_errors = 0;
  constexpr int kRuns = 60;
  for (std::uint64_t s = 0; s < kRuns; ++s) {
    const auto ans = ask(15000, 10000, 300 + s);  // n = T·1.5
    if (ans.decisive && !ans.above) ++beta_errors;
  }
  EXPECT_LE(beta_errors, 9);  // β = 0.05 plus generous binomial slack
}

TEST(Threshold, EasyQuestionsAreCheap) {
  // 5× above the threshold: a handful of (all-busy) slots decides;
  // near the band the test works harder.
  const auto easy = ask(50000, 10000, 400);
  const auto hard = ask(13000, 10000, 401);
  EXPECT_LT(easy.slots, 40u);
  EXPECT_GT(hard.slots, easy.slots);
}

TEST(Threshold, CheaperThanAFullEstimateWhenFarFromT) {
  const auto ans = ask(100000, 10000, 500);
  // BFCE's constant cost is ~0.19 s; a decisive far-side threshold
  // query should come in far under that.
  EXPECT_LT(ans.time_us / 1e6, 0.19);
  EXPECT_TRUE(ans.above);
}

TEST(Threshold, InsideTheBandHitsTheCapButLeansRight) {
  ThresholdQuery q;
  q.threshold = 10000;
  q.gamma = 1.05;  // razor-thin band
  q.max_slots = 300;
  const auto pop = rfid::make_population(
      10000, rfid::TagIdDistribution::kT1Uniform, 600);
  rfid::ReaderContext ctx(pop, 601, rfid::FrameMode::kSampled);
  const auto ans = threshold_query(ctx, q);
  if (!ans.decisive) {
    EXPECT_EQ(ans.slots, 300u);
  }
  // Either way the answer field is populated.
  SUCCEED();
}

TEST(Threshold, TighterErrorsCostMoreSlots) {
  ThresholdQuery strict;
  strict.threshold = 10000;
  strict.alpha = 0.001;
  strict.beta = 0.001;
  ThresholdQuery loose;
  loose.threshold = 10000;
  loose.alpha = 0.2;
  loose.beta = 0.2;
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 700);
  double strict_slots = 0.0;
  double loose_slots = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    rfid::ReaderContext a(pop, 800 + s, rfid::FrameMode::kSampled);
    rfid::ReaderContext b(pop, 800 + s, rfid::FrameMode::kSampled);
    strict_slots += threshold_query(a, strict).slots;
    loose_slots += threshold_query(b, loose).slots;
  }
  EXPECT_GT(strict_slots, 1.5 * loose_slots);
}

}  // namespace
}  // namespace bfce::core
