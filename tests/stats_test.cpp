// Tests for the statistics accumulators and summaries.
#include "math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bfce::math {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats rs;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic data set: 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty ← nonempty
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // nonempty ← empty
  EXPECT_EQ(a.count(), 2u);
}

TEST(QuantileSorted, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.1), 1.4);
}

TEST(QuantileSorted, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.99), 7.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(quantile_sorted({1.0, 2.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({1.0, 2.0}, 2.0), 2.0);
}

TEST(Summarize, ComputesAllFields) {
  const Summary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(EmpiricalCdf, IsSortedAndEndsAtOne) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().second, 0.25);
  EXPECT_DOUBLE_EQ(cdf.back().first, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Median, RobustToOutlier) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
}

}  // namespace
}  // namespace bfce::math
