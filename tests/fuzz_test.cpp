// Randomised reference-model tests: drive the low-level containers and
// accumulators with random operation sequences and compare against
// trivially correct models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/bfce.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"
#include "sim/churn.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace bfce {
namespace {

TEST(FuzzBitVector, MatchesVectorBoolModel) {
  util::Xoshiro256ss rng(1);
  for (int round = 0; round < 20; ++round) {
    const std::size_t size = 1 + rng.below(300);
    util::BitVector bv(size);
    std::vector<bool> model(size, false);
    for (int op = 0; op < 500; ++op) {
      const std::size_t i = rng.below(size);
      switch (rng.below(3)) {
        case 0:
          bv.set(i, true);
          model[i] = true;
          break;
        case 1:
          bv.set(i, false);
          model[i] = false;
          break;
        default:
          ASSERT_EQ(bv.get(i), model[i]) << "round " << round;
      }
    }
    // Full-state comparison including the aggregate queries.
    std::size_t ones = 0;
    for (std::size_t i = 0; i < size; ++i) {
      ASSERT_EQ(bv.get(i), model[i]);
      if (model[i]) ++ones;
    }
    ASSERT_EQ(bv.count_ones(), ones);
    const auto model_first_zero = static_cast<std::size_t>(
        std::find(model.begin(), model.end(), false) - model.begin());
    const auto model_first_one = static_cast<std::size_t>(
        std::find(model.begin(), model.end(), true) - model.begin());
    ASSERT_EQ(bv.first_zero(), model_first_zero);
    ASSERT_EQ(bv.first_one(), model_first_one);
    // Random prefixes.
    for (int p = 0; p < 10; ++p) {
      const std::size_t prefix = rng.below(size + 1);
      ASSERT_EQ(bv.count_ones_prefix(prefix),
                static_cast<std::size_t>(std::count(
                    model.begin(),
                    model.begin() + static_cast<long>(prefix), true)));
    }
  }
}

TEST(FuzzRunningStats, MatchesNaiveTwoPassComputation) {
  util::Xoshiro256ss rng(2);
  for (int round = 0; round < 30; ++round) {
    const std::size_t count = 2 + rng.below(400);
    math::RunningStats rs;
    std::vector<double> xs;
    for (std::size_t i = 0; i < count; ++i) {
      // Mix magnitudes to stress numerical stability.
      const double x = (rng.uniform() - 0.5) *
                       std::pow(10.0, static_cast<double>(rng.below(6)));
      xs.push_back(x);
      rs.add(x);
    }
    const double mean =
        std::accumulate(xs.begin(), xs.end(), 0.0) /
        static_cast<double>(count);
    double ss = 0.0;
    for (const double x : xs) ss += (x - mean) * (x - mean);
    const double var = ss / static_cast<double>(count - 1);
    ASSERT_NEAR(rs.mean(), mean, 1e-9 * (1.0 + std::fabs(mean)));
    ASSERT_NEAR(rs.variance(), var, 1e-9 * (1.0 + var));
    ASSERT_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
    ASSERT_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
  }
}

TEST(FuzzRunningStats, RandomSplitsMergeConsistently) {
  util::Xoshiro256ss rng(3);
  for (int round = 0; round < 20; ++round) {
    const std::size_t count = 10 + rng.below(200);
    math::RunningStats whole;
    math::RunningStats left;
    math::RunningStats right;
    for (std::size_t i = 0; i < count; ++i) {
      const double x = rng.uniform() * 1000.0 - 500.0;
      whole.add(x);
      (rng.bernoulli(0.5) ? left : right).add(x);
    }
    left.merge(right);
    ASSERT_EQ(left.count(), whole.count());
    ASSERT_NEAR(left.mean(), whole.mean(), 1e-9);
    ASSERT_NEAR(left.variance(), whole.variance(), 1e-7);
  }
}

TEST(FuzzQuantiles, SortedQuantileIsMonotone) {
  util::Xoshiro256ss rng(4);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> xs;
    const std::size_t count = 1 + rng.below(100);
    for (std::size_t i = 0; i < count; ++i) {
      xs.push_back(rng.uniform() * 100.0);
    }
    std::sort(xs.begin(), xs.end());
    double prev = xs.front();
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      const double v = math::quantile_sorted(xs, q);
      ASSERT_GE(v, prev - 1e-12);
      ASSERT_GE(v, xs.front());
      ASSERT_LE(v, xs.back());
      prev = v;
    }
  }
}

TEST(FuzzTinyPopulations, EstimatesStayFiniteThroughChurnAndBfce) {
  // n ∈ {0, 1} sends the frame all-idle (ρ̄ = 1): Theorem 2's
  // −w·ln(ρ̄)/(k·p) hits ln(1) = 0 and the planner has no satisfiable
  // p_o. Fuzz the surrounding churn + estimate paths across seeds,
  // requirements and frame modes: nothing may divide by zero, go NaN
  // or report a designed round.
  const estimators::Requirement reqs[] = {
      {0.05, 0.05}, {0.1, 0.01}, {0.2, 0.1}};
  util::Xoshiro256ss rng(6);
  for (int round = 0; round < 24; ++round) {
    const std::size_t n = round % 2;  // 0 or 1
    sim::PopulationTimeline tl(n, 100 + static_cast<std::uint64_t>(round));
    // A few churn periods that keep the population tiny.
    for (int p = 0; p < 3; ++p) {
      const sim::ChurnStep s =
          tl.step(sim::ChurnModel{rng.uniform(), rng.uniform()});
      ASSERT_LE(s.departed, s.population + s.departed);
    }
    const auto mode = round % 4 < 2 ? rfid::FrameMode::kExact
                                    : rfid::FrameMode::kSampled;
    rfid::ReaderContext ctx(tl.current(), rng(), mode);
    core::BfceEstimator estimator;
    const estimators::EstimateOutcome out =
        estimator.estimate(ctx, reqs[round % 3]);
    ASSERT_TRUE(std::isfinite(out.n_hat)) << "round " << round;
    ASSERT_GE(out.n_hat, 0.0) << "round " << round;
    ASSERT_TRUE(std::isfinite(out.ci_low)) << "round " << round;
    ASSERT_TRUE(std::isfinite(out.ci_high)) << "round " << round;
    ASSERT_TRUE(std::isfinite(out.time_us)) << "round " << round;
    if (tl.size() <= 1) {
      ASSERT_FALSE(out.met_by_design) << "round " << round;
    }
  }
}

TEST(FuzzMedian, AgreesWithSortBasedMedian) {
  util::Xoshiro256ss rng(5);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> xs;
    const std::size_t count = 1 + rng.below(60);
    for (std::size_t i = 0; i < count; ++i) {
      xs.push_back(std::floor(rng.uniform() * 20.0));  // ties on purpose
    }
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    const double expected =
        count % 2 == 1
            ? sorted[count / 2]
            : 0.5 * (sorted[count / 2 - 1] + sorted[count / 2]);
    ASSERT_DOUBLE_EQ(math::median(xs), expected) << round;
  }
}

}  // namespace
}  // namespace bfce
