// Tests for the tag-side energy model and the tag_tx_bits accounting.
#include "rfid/energy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bfce.hpp"
#include "estimators/registry.hpp"
#include "estimators/zoe.hpp"
#include "rfid/frame.hpp"
#include "rfid/reader.hpp"

namespace bfce::rfid {
namespace {

TEST(EnergyModel, PricesTheLedgerComponents) {
  EnergyModel em;
  em.tag_tx_uj_per_bit = 2.0;
  em.tag_rx_uj_per_bit = 1.0;
  Airtime a;
  a.reader_bits = 100;  // heard by every one of 10 tags
  a.tag_tx_bits = 30;   // individual transmissions
  EXPECT_DOUBLE_EQ(em.population_uj(a, 10), 10 * 100 * 1.0 + 30 * 2.0);
  EXPECT_DOUBLE_EQ(em.per_tag_uj(a, 10), em.population_uj(a, 10) / 10.0);
  EXPECT_DOUBLE_EQ(em.per_tag_uj(a, 0), 0.0);
}

TEST(TxAccounting, BloomFrameCountsEveryResponse) {
  const auto pop = make_population(5000, TagIdDistribution::kT1Uniform, 1);
  util::Xoshiro256ss rng(2);
  Channel ch;
  BloomFrameConfig cfg;
  cfg.set_p_numerator(1024);  // p = 1: every tag fires k times
  cfg.seeds = {1, 2, 3};
  std::uint64_t tx = 0;
  run_bloom_frame(pop, cfg, ch, rng, &tx);
  EXPECT_EQ(tx, 5000u * 3u);
}

TEST(TxAccounting, PersistenceScalesTransmissions) {
  const auto pop = make_population(20000, TagIdDistribution::kT1Uniform, 3);
  util::Xoshiro256ss rng(4);
  Channel ch;
  BloomFrameConfig cfg;
  cfg.set_p_numerator(256);  // p = 0.25
  cfg.seeds = {1, 2, 3};
  std::uint64_t tx = 0;
  run_bloom_frame(pop, cfg, ch, rng, &tx);
  const double expected = 20000.0 * 3.0 * 0.25;
  EXPECT_NEAR(static_cast<double>(tx), expected, expected * 0.05);
}

TEST(TxAccounting, SampledAndExactAgreeInExpectation) {
  const auto pop = make_population(10000, TagIdDistribution::kT1Uniform, 5);
  util::Xoshiro256ss rng(6);
  Channel ch;
  BloomFrameConfig cfg;
  cfg.set_p_numerator(128);
  cfg.seeds = {7, 8, 9};
  std::uint64_t tx_exact = 0;
  std::uint64_t tx_sampled = 0;
  for (int i = 0; i < 20; ++i) {
    run_bloom_frame(pop, cfg, ch, rng, &tx_exact);
    sampled_bloom_frame(pop.size(), cfg, ch, rng, &tx_sampled);
  }
  EXPECT_NEAR(static_cast<double>(tx_exact),
              static_cast<double>(tx_sampled),
              static_cast<double>(tx_exact) * 0.05);
}

TEST(TxAccounting, LotteryFrameChargesEveryTag) {
  const auto pop = make_population(3000, TagIdDistribution::kT1Uniform, 7);
  util::Xoshiro256ss rng(8);
  Channel ch;
  std::uint64_t tx = 0;
  run_lottery_frame(pop, 32, 99, ch, rng, &tx);
  EXPECT_EQ(tx, 3000u);
  sampled_lottery_frame(3000, 32, ch, rng, &tx);
  EXPECT_EQ(tx, 6000u);
}

TEST(TxAccounting, EstimatorsFillTheLedger) {
  const auto pop = make_population(30000, TagIdDistribution::kT1Uniform, 9);
  for (const char* name : {"BFCE", "ZOE", "SRC", "LOF", "A3"}) {
    const auto est = estimators::make_estimator(name);
    rfid::ReaderContext ctx(pop, 10, rfid::FrameMode::kSampled);
    const auto out = est->estimate(ctx, {0.1, 0.1});
    EXPECT_GT(out.airtime.tag_tx_bits, 0u) << name;
  }
}

TEST(EnergyComparison, ZoeListeningCostDwarfsBfce) {
  // The energy analogue of the paper's time result: ZOE makes every tag
  // listen to m×32 seed bits, so its per-tag energy is orders of
  // magnitude above BFCE's.
  const auto pop = make_population(50000, TagIdDistribution::kT1Uniform, 11);
  EnergyModel em;
  rfid::ReaderContext c1(pop, 12, rfid::FrameMode::kSampled);
  rfid::ReaderContext c2(pop, 13, rfid::FrameMode::kSampled);
  const auto bfce = core::BfceEstimator().estimate(c1, {0.05, 0.05});
  const auto zoe = estimators::ZoeEstimator().estimate(c2, {0.05, 0.05});
  const double e_bfce = em.per_tag_uj(bfce.airtime, 50000);
  const double e_zoe = em.per_tag_uj(zoe.airtime, 50000);
  EXPECT_GT(e_zoe, 50.0 * e_bfce);
}

}  // namespace
}  // namespace bfce::rfid
