// Tests for the exact-identification protocols (Q algorithm, tree walk).
#include <gtest/gtest.h>

#include "core/bfce.hpp"
#include "identification/qprotocol.hpp"
#include "identification/treewalk.hpp"
#include "rfid/reader.hpp"

namespace bfce::identification {
namespace {

rfid::TagPopulation pop_of(std::size_t n, std::uint64_t seed = 1) {
  return rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, seed);
}

TEST(QProtocol, IdentifiesEveryTag) {
  for (std::size_t n : {0UL, 1UL, 100UL, 5000UL}) {
    const auto pop = pop_of(n, n + 1);
    rfid::ReaderContext ctx(pop, 42);
    QProtocol q;
    const IdentificationOutcome out = q.identify(ctx);
    EXPECT_EQ(out.identified, n) << n;
    EXPECT_EQ(out.singleton_slots, n) << n;
  }
}

TEST(QProtocol, SlotEfficiencyNearTheAlohaOptimum) {
  // Optimal framed ALOHA identifies ~1/e of slots as singletons; the Q
  // algorithm should stay within 2× of that (≤ ~6 slots per tag).
  const auto pop = pop_of(20000, 2);
  rfid::ReaderContext ctx(pop, 43);
  QProtocol q;
  const IdentificationOutcome out = q.identify(ctx);
  const double slots_per_tag =
      static_cast<double>(out.total_slots) / 20000.0;
  EXPECT_LT(slots_per_tag, 6.0);
  EXPECT_GT(slots_per_tag, 2.0);  // can't beat e ≈ 2.718 slots/tag
}

TEST(QProtocol, CountsSlotTypesConsistently) {
  const auto pop = pop_of(3000, 3);
  rfid::ReaderContext ctx(pop, 44);
  QProtocol q;
  const IdentificationOutcome out = q.identify(ctx);
  EXPECT_EQ(out.empty_slots + out.singleton_slots + out.collision_slots,
            out.total_slots);
}

TEST(QProtocol, TimeScalesLinearlyInN) {
  QProtocol q;
  auto seconds = [&](std::size_t n) {
    const auto pop = pop_of(n, n);
    rfid::ReaderContext ctx(pop, 45);
    return q.identify(ctx).total_seconds(ctx.timing());
  };
  const double t2k = seconds(2000);
  const double t20k = seconds(20000);
  EXPECT_NEAR(t20k / t2k, 10.0, 3.0);
}

TEST(TreeWalk, IdentifiesEveryTag) {
  for (std::size_t n : {0UL, 1UL, 100UL, 5000UL}) {
    const auto pop = pop_of(n, n + 7);
    rfid::ReaderContext ctx(pop, 46);
    TreeWalk tree;
    const IdentificationOutcome out = tree.identify(ctx);
    EXPECT_EQ(out.identified, n) << n;
  }
}

TEST(TreeWalk, QueryCountNearTheTrieBound) {
  // Random IDs give ~2.9 queries/tag (2n internal + n leaves ≈ 3n nodes
  // minus pruning); assert the classic [2, 4] window.
  const auto pop = pop_of(10000, 4);
  rfid::ReaderContext ctx(pop, 47);
  TreeWalk tree;
  const IdentificationOutcome out = tree.identify(ctx);
  const double queries_per_tag =
      static_cast<double>(out.total_slots) / 10000.0;
  EXPECT_GT(queries_per_tag, 2.0);
  EXPECT_LT(queries_per_tag, 4.0);
}

TEST(TreeWalk, DeterministicForAPopulation) {
  const auto pop = pop_of(2000, 5);
  TreeWalk tree;
  rfid::ReaderContext a(pop, 48);
  rfid::ReaderContext b(pop, 999);  // context seed is irrelevant: no RNG
  EXPECT_EQ(tree.identify(a).total_slots, tree.identify(b).total_slots);
}

TEST(Identification, EstimationIsOrdersOfMagnitudeCheaper) {
  // The library's raison d'être (§III-A, Fig 1): identifying 50k tags
  // takes minutes of airtime; BFCE estimates them in ~0.2 s.
  const auto pop = pop_of(50000, 6);
  rfid::ReaderContext id_ctx(pop, 49);
  QProtocol q;
  const double t_identify = q.identify(id_ctx).total_seconds(id_ctx.timing());

  rfid::ReaderContext est_ctx(pop, 50);
  core::BfceEstimator bfce;
  const auto est = bfce.estimate(est_ctx, {0.05, 0.05});
  const double t_estimate = est.airtime.total_seconds(est_ctx.timing());

  EXPECT_GT(t_identify, 60.0);          // minutes of airtime
  EXPECT_LT(t_estimate, 0.3);           // constant-time estimation
  EXPECT_GT(t_identify / t_estimate, 200.0);
}

}  // namespace
}  // namespace bfce::identification
