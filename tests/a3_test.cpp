// Tests for the A³ comparator.
#include "estimators/a3.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/experiment.hpp"

namespace bfce::estimators {
namespace {

TEST(A3, AccurateAcrossScales) {
  for (std::size_t n : {5000UL, 100000UL, 1000000UL}) {
    const auto pop = rfid::make_population(
        n, rfid::TagIdDistribution::kT1Uniform, n);
    sim::ExperimentConfig cfg;
    cfg.trials = 15;
    cfg.req = {0.05, 0.05};
    cfg.mode = rfid::FrameMode::kSampled;
    cfg.seed = 5;
    const auto records = sim::run_experiment(
        pop, [] { return std::make_unique<A3Estimator>(); }, cfg);
    const auto s = sim::summarize_records(records, 0.05);
    EXPECT_LT(s.accuracy.mean, 0.05) << n;
  }
}

TEST(A3, ArbitraryAccuracyKnobWorks) {
  // Tighter ε must buy more rounds (the "arbitrarily accurate" claim).
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 1);
  A3Estimator est;
  rfid::ReaderContext a(pop, 2, rfid::FrameMode::kSampled);
  rfid::ReaderContext b(pop, 2, rfid::FrameMode::kSampled);
  const auto tight = est.estimate(a, {0.02, 0.05});
  const auto loose = est.estimate(b, {0.20, 0.05});
  EXPECT_GT(tight.rounds, loose.rounds);
  EXPECT_GT(tight.time_us, loose.time_us);
}

TEST(A3, PivotSearchCostsLogarithmicSlots) {
  // Stage 1 probes ~log2(n) levels × pivot_slots_per_level single slots;
  // even at n = 1M that is well under 100 slots before refinement.
  const auto pop = rfid::make_population(
      1000000, rfid::TagIdDistribution::kT1Uniform, 3);
  A3Estimator est;
  rfid::ReaderContext ctx(pop, 4, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.3, 0.3});
  // One refinement frame (1024 slots) + pivot probes: the pivot share is
  // total − rounds·1024.
  const std::uint64_t pivot_slots =
      out.airtime.tag_bits - static_cast<std::uint64_t>(out.rounds) * 1024;
  EXPECT_LT(pivot_slots, 120u);
  EXPECT_GT(pivot_slots, 10u);
}

TEST(A3, EmptySystemDoesNotDivide) {
  const auto pop = rfid::make_population(
      0, rfid::TagIdDistribution::kT1Uniform, 5);
  A3Estimator est;
  rfid::ReaderContext ctx(pop, 6, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.1, 0.1});
  EXPECT_GE(out.n_hat, 0.0);
  EXPECT_LT(out.n_hat, 100.0);
}

TEST(A3, NameIsStable) { EXPECT_EQ(A3Estimator().name(), "A3"); }

}  // namespace
}  // namespace bfce::estimators
