// Tests for C1G2 Select filtering and categorized populations.
#include "rfid/select.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/bfce.hpp"
#include "rfid/reader.hpp"

namespace bfce::rfid {
namespace {

TEST(SelectMask, MatchSemantics) {
  SelectMask mask;
  mask.prefix = 0b101;
  mask.prefix_bits = 3;
  mask.id_bits = 50;
  EXPECT_TRUE(mask.matches(0b101ULL << 47));
  EXPECT_TRUE(mask.matches((0b101ULL << 47) | 12345));
  EXPECT_FALSE(mask.matches(0b100ULL << 47));
  EXPECT_FALSE(mask.matches(0));
}

TEST(SelectMask, ZeroBitsMatchesEverything) {
  SelectMask all;
  EXPECT_TRUE(all.matches(0));
  EXPECT_TRUE(all.matches(~0ULL >> 14));
}

TEST(SelectMask, AirtimeGrowsWithMaskLength) {
  SelectMask narrow;
  narrow.prefix_bits = 2;
  SelectMask wide;
  wide.prefix_bits = 32;
  EXPECT_GT(wide.airtime_cost().reader_bits,
            narrow.airtime_cost().reader_bits);
  EXPECT_EQ(narrow.airtime_cost().intervals, 1u);
}

TEST(CategorizedPopulation, ExactCountsPerCategory) {
  const std::vector<std::size_t> counts = {500, 1500, 0, 3000};
  const auto pop = make_categorized_population(counts, 4, 7);
  ASSERT_EQ(pop.size(), 5000u);
  std::vector<std::size_t> seen(counts.size(), 0);
  for (const Tag& t : pop.tags()) {
    ++seen[t.id >> 46];  // 50 − 4 prefix bits
  }
  for (std::size_t c = 0; c < counts.size(); ++c) {
    EXPECT_EQ(seen[c], counts[c]) << c;
  }
}

TEST(CategorizedPopulation, UniqueIds) {
  const auto pop = make_categorized_population({4000, 4000}, 4, 8);
  std::unordered_set<std::uint64_t> ids;
  for (const Tag& t : pop.tags()) ids.insert(t.id);
  EXPECT_EQ(ids.size(), pop.size());
}

TEST(SelectPopulation, FiltersExactly) {
  const auto pop = make_categorized_population({1000, 2000, 3000}, 4, 9);
  for (std::uint64_t c = 0; c < 3; ++c) {
    SelectMask mask;
    mask.prefix = c;
    mask.prefix_bits = 4;
    const auto sub = select_population(pop, mask);
    EXPECT_EQ(sub.size(), 1000u * (c + 1)) << c;
    for (const Tag& t : sub.tags()) {
      EXPECT_TRUE(mask.matches(t.id));
    }
  }
}

TEST(SelectPopulation, CategoryCensusEndToEnd) {
  // Select each category, estimate it with BFCE, and check the per-
  // category estimates add up sensibly.
  const std::vector<std::size_t> counts = {20000, 50000, 80000};
  const auto pop = make_categorized_population(counts, 4, 10);
  core::BfceEstimator bfce;
  double total = 0.0;
  for (std::uint64_t c = 0; c < counts.size(); ++c) {
    SelectMask mask;
    mask.prefix = c;
    mask.prefix_bits = 4;
    const auto sub = select_population(pop, mask);
    rfid::ReaderContext ctx(sub, 100 + c, rfid::FrameMode::kSampled);
    const auto out = bfce.estimate(ctx, {0.05, 0.05});
    EXPECT_LT(out.relative_error(static_cast<double>(counts[c])), 0.06)
        << c;
    total += out.n_hat;
  }
  EXPECT_NEAR(total, 150000.0, 150000.0 * 0.04);
}

}  // namespace
}  // namespace bfce::rfid
