# Empty compiler generated dependencies file for missing_tags.
# This may be replaced when dependencies are built.
