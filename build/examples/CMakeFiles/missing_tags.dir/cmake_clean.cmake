file(REMOVE_RECURSE
  "CMakeFiles/missing_tags.dir/missing_tags.cpp.o"
  "CMakeFiles/missing_tags.dir/missing_tags.cpp.o.d"
  "missing_tags"
  "missing_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missing_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
