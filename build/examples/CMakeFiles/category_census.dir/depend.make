# Empty dependencies file for category_census.
# This may be replaced when dependencies are built.
