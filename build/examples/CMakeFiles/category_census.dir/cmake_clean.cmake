file(REMOVE_RECURSE
  "CMakeFiles/category_census.dir/category_census.cpp.o"
  "CMakeFiles/category_census.dir/category_census.cpp.o.d"
  "category_census"
  "category_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/category_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
