file(REMOVE_RECURSE
  "CMakeFiles/multi_reader_floor.dir/multi_reader_floor.cpp.o"
  "CMakeFiles/multi_reader_floor.dir/multi_reader_floor.cpp.o.d"
  "multi_reader_floor"
  "multi_reader_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_reader_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
