# Empty dependencies file for multi_reader_floor.
# This may be replaced when dependencies are built.
