file(REMOVE_RECURSE
  "CMakeFiles/protocol_timeline.dir/protocol_timeline.cpp.o"
  "CMakeFiles/protocol_timeline.dir/protocol_timeline.cpp.o.d"
  "protocol_timeline"
  "protocol_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
