# Empty compiler generated dependencies file for find_my_tags.
# This may be replaced when dependencies are built.
