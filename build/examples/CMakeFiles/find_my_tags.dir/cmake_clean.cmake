file(REMOVE_RECURSE
  "CMakeFiles/find_my_tags.dir/find_my_tags.cpp.o"
  "CMakeFiles/find_my_tags.dir/find_my_tags.cpp.o.d"
  "find_my_tags"
  "find_my_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_my_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
