# Empty dependencies file for accuracy_planner.
# This may be replaced when dependencies are built.
