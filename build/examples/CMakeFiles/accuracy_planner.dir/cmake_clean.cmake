file(REMOVE_RECURSE
  "CMakeFiles/accuracy_planner.dir/accuracy_planner.cpp.o"
  "CMakeFiles/accuracy_planner.dir/accuracy_planner.cpp.o.d"
  "accuracy_planner"
  "accuracy_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
