file(REMOVE_RECURSE
  "CMakeFiles/estimator_zoo.dir/estimator_zoo.cpp.o"
  "CMakeFiles/estimator_zoo.dir/estimator_zoo.cpp.o.d"
  "estimator_zoo"
  "estimator_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
