# Empty dependencies file for estimator_zoo.
# This may be replaced when dependencies are built.
