add_test([=[Scenario.ThirtyPeriodWarehouseStory]=]  /root/repo/build/tests/scenario_test [==[--gtest_filter=Scenario.ThirtyPeriodWarehouseStory]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Scenario.ThirtyPeriodWarehouseStory]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 600)
set(  scenario_test_TESTS Scenario.ThirtyPeriodWarehouseStory)
