file(REMOVE_RECURSE
  "CMakeFiles/identification_test.dir/identification_test.cpp.o"
  "CMakeFiles/identification_test.dir/identification_test.cpp.o.d"
  "identification_test"
  "identification_test.pdb"
  "identification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
