# Empty dependencies file for bfce_test.
# This may be replaced when dependencies are built.
