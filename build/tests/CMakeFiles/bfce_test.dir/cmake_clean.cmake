file(REMOVE_RECURSE
  "CMakeFiles/bfce_test.dir/bfce_test.cpp.o"
  "CMakeFiles/bfce_test.dir/bfce_test.cpp.o.d"
  "bfce_test"
  "bfce_test.pdb"
  "bfce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
