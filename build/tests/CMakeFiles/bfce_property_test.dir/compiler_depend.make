# Empty compiler generated dependencies file for bfce_property_test.
# This may be replaced when dependencies are built.
