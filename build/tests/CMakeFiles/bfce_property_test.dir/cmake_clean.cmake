file(REMOVE_RECURSE
  "CMakeFiles/bfce_property_test.dir/bfce_property_test.cpp.o"
  "CMakeFiles/bfce_property_test.dir/bfce_property_test.cpp.o.d"
  "bfce_property_test"
  "bfce_property_test.pdb"
  "bfce_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfce_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
