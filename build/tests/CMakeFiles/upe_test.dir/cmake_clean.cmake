file(REMOVE_RECURSE
  "CMakeFiles/upe_test.dir/upe_test.cpp.o"
  "CMakeFiles/upe_test.dir/upe_test.cpp.o.d"
  "upe_test"
  "upe_test.pdb"
  "upe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
