# Empty dependencies file for upe_test.
# This may be replaced when dependencies are built.
