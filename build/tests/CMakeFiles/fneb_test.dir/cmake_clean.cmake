file(REMOVE_RECURSE
  "CMakeFiles/fneb_test.dir/fneb_test.cpp.o"
  "CMakeFiles/fneb_test.dir/fneb_test.cpp.o.d"
  "fneb_test"
  "fneb_test.pdb"
  "fneb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fneb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
