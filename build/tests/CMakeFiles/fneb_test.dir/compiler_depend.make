# Empty compiler generated dependencies file for fneb_test.
# This may be replaced when dependencies are built.
