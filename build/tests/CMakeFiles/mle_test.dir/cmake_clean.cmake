file(REMOVE_RECURSE
  "CMakeFiles/mle_test.dir/mle_test.cpp.o"
  "CMakeFiles/mle_test.dir/mle_test.cpp.o.d"
  "mle_test"
  "mle_test.pdb"
  "mle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
