# Empty dependencies file for mle_test.
# This may be replaced when dependencies are built.
