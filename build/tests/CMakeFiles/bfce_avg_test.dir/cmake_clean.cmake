file(REMOVE_RECURSE
  "CMakeFiles/bfce_avg_test.dir/bfce_avg_test.cpp.o"
  "CMakeFiles/bfce_avg_test.dir/bfce_avg_test.cpp.o.d"
  "bfce_avg_test"
  "bfce_avg_test.pdb"
  "bfce_avg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfce_avg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
