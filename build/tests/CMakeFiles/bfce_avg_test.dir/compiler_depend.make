# Empty compiler generated dependencies file for bfce_avg_test.
# This may be replaced when dependencies are built.
