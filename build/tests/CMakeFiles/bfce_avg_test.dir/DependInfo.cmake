
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bfce_avg_test.cpp" "tests/CMakeFiles/bfce_avg_test.dir/bfce_avg_test.cpp.o" "gcc" "tests/CMakeFiles/bfce_avg_test.dir/bfce_avg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rfid_simlab.dir/DependInfo.cmake"
  "/root/repo/build/src/estimators/CMakeFiles/rfid_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/identification/CMakeFiles/rfid_identification.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bfce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rfid/CMakeFiles/rfid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rfid_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rfid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
