file(REMOVE_RECURSE
  "CMakeFiles/zoe_test.dir/zoe_test.cpp.o"
  "CMakeFiles/zoe_test.dir/zoe_test.cpp.o.d"
  "zoe_test"
  "zoe_test.pdb"
  "zoe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
