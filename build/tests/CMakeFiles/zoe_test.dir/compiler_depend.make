# Empty compiler generated dependencies file for zoe_test.
# This may be replaced when dependencies are built.
