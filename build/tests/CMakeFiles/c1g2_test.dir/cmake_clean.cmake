file(REMOVE_RECURSE
  "CMakeFiles/c1g2_test.dir/c1g2_test.cpp.o"
  "CMakeFiles/c1g2_test.dir/c1g2_test.cpp.o.d"
  "c1g2_test"
  "c1g2_test.pdb"
  "c1g2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c1g2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
