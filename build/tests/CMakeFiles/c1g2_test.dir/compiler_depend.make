# Empty compiler generated dependencies file for c1g2_test.
# This may be replaced when dependencies are built.
