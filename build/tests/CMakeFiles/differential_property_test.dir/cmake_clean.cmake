file(REMOVE_RECURSE
  "CMakeFiles/differential_property_test.dir/differential_property_test.cpp.o"
  "CMakeFiles/differential_property_test.dir/differential_property_test.cpp.o.d"
  "differential_property_test"
  "differential_property_test.pdb"
  "differential_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
