file(REMOVE_RECURSE
  "CMakeFiles/table_cli_test.dir/table_cli_test.cpp.o"
  "CMakeFiles/table_cli_test.dir/table_cli_test.cpp.o.d"
  "table_cli_test"
  "table_cli_test.pdb"
  "table_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
