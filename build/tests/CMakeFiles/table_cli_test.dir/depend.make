# Empty dependencies file for table_cli_test.
# This may be replaced when dependencies are built.
