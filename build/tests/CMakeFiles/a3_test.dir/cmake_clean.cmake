file(REMOVE_RECURSE
  "CMakeFiles/a3_test.dir/a3_test.cpp.o"
  "CMakeFiles/a3_test.dir/a3_test.cpp.o.d"
  "a3_test"
  "a3_test.pdb"
  "a3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
