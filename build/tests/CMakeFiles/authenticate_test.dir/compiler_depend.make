# Empty compiler generated dependencies file for authenticate_test.
# This may be replaced when dependencies are built.
