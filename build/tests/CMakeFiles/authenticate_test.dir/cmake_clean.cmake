file(REMOVE_RECURSE
  "CMakeFiles/authenticate_test.dir/authenticate_test.cpp.o"
  "CMakeFiles/authenticate_test.dir/authenticate_test.cpp.o.d"
  "authenticate_test"
  "authenticate_test.pdb"
  "authenticate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authenticate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
