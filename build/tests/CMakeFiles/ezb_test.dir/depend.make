# Empty dependencies file for ezb_test.
# This may be replaced when dependencies are built.
