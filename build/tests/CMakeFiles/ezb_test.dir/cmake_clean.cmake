file(REMOVE_RECURSE
  "CMakeFiles/ezb_test.dir/ezb_test.cpp.o"
  "CMakeFiles/ezb_test.dir/ezb_test.cpp.o.d"
  "ezb_test"
  "ezb_test.pdb"
  "ezb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ezb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
