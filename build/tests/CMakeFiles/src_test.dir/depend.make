# Empty dependencies file for src_test.
# This may be replaced when dependencies are built.
