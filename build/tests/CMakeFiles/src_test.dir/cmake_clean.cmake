file(REMOVE_RECURSE
  "CMakeFiles/src_test.dir/src_test.cpp.o"
  "CMakeFiles/src_test.dir/src_test.cpp.o.d"
  "src_test"
  "src_test.pdb"
  "src_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/src_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
