# Empty dependencies file for multireader_test.
# This may be replaced when dependencies are built.
