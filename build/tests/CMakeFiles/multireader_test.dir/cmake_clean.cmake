file(REMOVE_RECURSE
  "CMakeFiles/multireader_test.dir/multireader_test.cpp.o"
  "CMakeFiles/multireader_test.dir/multireader_test.cpp.o.d"
  "multireader_test"
  "multireader_test.pdb"
  "multireader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multireader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
