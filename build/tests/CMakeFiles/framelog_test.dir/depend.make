# Empty dependencies file for framelog_test.
# This may be replaced when dependencies are built.
