file(REMOVE_RECURSE
  "CMakeFiles/framelog_test.dir/framelog_test.cpp.o"
  "CMakeFiles/framelog_test.dir/framelog_test.cpp.o.d"
  "framelog_test"
  "framelog_test.pdb"
  "framelog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framelog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
