file(REMOVE_RECURSE
  "libbfce_core.a"
)
