
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/bfce_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/authenticate.cpp" "src/core/CMakeFiles/bfce_core.dir/authenticate.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/authenticate.cpp.o.d"
  "/root/repo/src/core/bfce.cpp" "src/core/CMakeFiles/bfce_core.dir/bfce.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/bfce.cpp.o.d"
  "/root/repo/src/core/differential.cpp" "src/core/CMakeFiles/bfce_core.dir/differential.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/differential.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/bfce_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/multiset.cpp" "src/core/CMakeFiles/bfce_core.dir/multiset.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/multiset.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/bfce_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/search.cpp.o.d"
  "/root/repo/src/core/threshold.cpp" "src/core/CMakeFiles/bfce_core.dir/threshold.cpp.o" "gcc" "src/core/CMakeFiles/bfce_core.dir/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rfid/CMakeFiles/rfid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rfid_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rfid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
