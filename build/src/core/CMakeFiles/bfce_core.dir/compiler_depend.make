# Empty compiler generated dependencies file for bfce_core.
# This may be replaced when dependencies are built.
