file(REMOVE_RECURSE
  "CMakeFiles/bfce_core.dir/analysis.cpp.o"
  "CMakeFiles/bfce_core.dir/analysis.cpp.o.d"
  "CMakeFiles/bfce_core.dir/authenticate.cpp.o"
  "CMakeFiles/bfce_core.dir/authenticate.cpp.o.d"
  "CMakeFiles/bfce_core.dir/bfce.cpp.o"
  "CMakeFiles/bfce_core.dir/bfce.cpp.o.d"
  "CMakeFiles/bfce_core.dir/differential.cpp.o"
  "CMakeFiles/bfce_core.dir/differential.cpp.o.d"
  "CMakeFiles/bfce_core.dir/monitor.cpp.o"
  "CMakeFiles/bfce_core.dir/monitor.cpp.o.d"
  "CMakeFiles/bfce_core.dir/multiset.cpp.o"
  "CMakeFiles/bfce_core.dir/multiset.cpp.o.d"
  "CMakeFiles/bfce_core.dir/search.cpp.o"
  "CMakeFiles/bfce_core.dir/search.cpp.o.d"
  "CMakeFiles/bfce_core.dir/threshold.cpp.o"
  "CMakeFiles/bfce_core.dir/threshold.cpp.o.d"
  "libbfce_core.a"
  "libbfce_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfce_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
