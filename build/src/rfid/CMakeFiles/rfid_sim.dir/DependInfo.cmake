
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfid/c1g2.cpp" "src/rfid/CMakeFiles/rfid_sim.dir/c1g2.cpp.o" "gcc" "src/rfid/CMakeFiles/rfid_sim.dir/c1g2.cpp.o.d"
  "/root/repo/src/rfid/frame.cpp" "src/rfid/CMakeFiles/rfid_sim.dir/frame.cpp.o" "gcc" "src/rfid/CMakeFiles/rfid_sim.dir/frame.cpp.o.d"
  "/root/repo/src/rfid/framelog.cpp" "src/rfid/CMakeFiles/rfid_sim.dir/framelog.cpp.o" "gcc" "src/rfid/CMakeFiles/rfid_sim.dir/framelog.cpp.o.d"
  "/root/repo/src/rfid/multireader.cpp" "src/rfid/CMakeFiles/rfid_sim.dir/multireader.cpp.o" "gcc" "src/rfid/CMakeFiles/rfid_sim.dir/multireader.cpp.o.d"
  "/root/repo/src/rfid/population.cpp" "src/rfid/CMakeFiles/rfid_sim.dir/population.cpp.o" "gcc" "src/rfid/CMakeFiles/rfid_sim.dir/population.cpp.o.d"
  "/root/repo/src/rfid/select.cpp" "src/rfid/CMakeFiles/rfid_sim.dir/select.cpp.o" "gcc" "src/rfid/CMakeFiles/rfid_sim.dir/select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rfid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rfid_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
