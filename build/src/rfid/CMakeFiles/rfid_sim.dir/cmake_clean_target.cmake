file(REMOVE_RECURSE
  "librfid_sim.a"
)
