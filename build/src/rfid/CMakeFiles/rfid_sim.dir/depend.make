# Empty dependencies file for rfid_sim.
# This may be replaced when dependencies are built.
