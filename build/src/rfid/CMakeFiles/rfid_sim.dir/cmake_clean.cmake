file(REMOVE_RECURSE
  "CMakeFiles/rfid_sim.dir/c1g2.cpp.o"
  "CMakeFiles/rfid_sim.dir/c1g2.cpp.o.d"
  "CMakeFiles/rfid_sim.dir/frame.cpp.o"
  "CMakeFiles/rfid_sim.dir/frame.cpp.o.d"
  "CMakeFiles/rfid_sim.dir/framelog.cpp.o"
  "CMakeFiles/rfid_sim.dir/framelog.cpp.o.d"
  "CMakeFiles/rfid_sim.dir/multireader.cpp.o"
  "CMakeFiles/rfid_sim.dir/multireader.cpp.o.d"
  "CMakeFiles/rfid_sim.dir/population.cpp.o"
  "CMakeFiles/rfid_sim.dir/population.cpp.o.d"
  "CMakeFiles/rfid_sim.dir/select.cpp.o"
  "CMakeFiles/rfid_sim.dir/select.cpp.o.d"
  "librfid_sim.a"
  "librfid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
