file(REMOVE_RECURSE
  "CMakeFiles/rfid_estimators.dir/a3.cpp.o"
  "CMakeFiles/rfid_estimators.dir/a3.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/art.cpp.o"
  "CMakeFiles/rfid_estimators.dir/art.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/ezb.cpp.o"
  "CMakeFiles/rfid_estimators.dir/ezb.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/fneb.cpp.o"
  "CMakeFiles/rfid_estimators.dir/fneb.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/lof.cpp.o"
  "CMakeFiles/rfid_estimators.dir/lof.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/mle.cpp.o"
  "CMakeFiles/rfid_estimators.dir/mle.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/pet.cpp.o"
  "CMakeFiles/rfid_estimators.dir/pet.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/registry.cpp.o"
  "CMakeFiles/rfid_estimators.dir/registry.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/src_protocol.cpp.o"
  "CMakeFiles/rfid_estimators.dir/src_protocol.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/upe.cpp.o"
  "CMakeFiles/rfid_estimators.dir/upe.cpp.o.d"
  "CMakeFiles/rfid_estimators.dir/zoe.cpp.o"
  "CMakeFiles/rfid_estimators.dir/zoe.cpp.o.d"
  "librfid_estimators.a"
  "librfid_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
