file(REMOVE_RECURSE
  "librfid_estimators.a"
)
