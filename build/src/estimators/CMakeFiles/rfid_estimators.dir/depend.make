# Empty dependencies file for rfid_estimators.
# This may be replaced when dependencies are built.
