
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/a3.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/a3.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/a3.cpp.o.d"
  "/root/repo/src/estimators/art.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/art.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/art.cpp.o.d"
  "/root/repo/src/estimators/ezb.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/ezb.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/ezb.cpp.o.d"
  "/root/repo/src/estimators/fneb.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/fneb.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/fneb.cpp.o.d"
  "/root/repo/src/estimators/lof.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/lof.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/lof.cpp.o.d"
  "/root/repo/src/estimators/mle.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/mle.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/mle.cpp.o.d"
  "/root/repo/src/estimators/pet.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/pet.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/pet.cpp.o.d"
  "/root/repo/src/estimators/registry.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/registry.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/registry.cpp.o.d"
  "/root/repo/src/estimators/src_protocol.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/src_protocol.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/src_protocol.cpp.o.d"
  "/root/repo/src/estimators/upe.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/upe.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/upe.cpp.o.d"
  "/root/repo/src/estimators/zoe.cpp" "src/estimators/CMakeFiles/rfid_estimators.dir/zoe.cpp.o" "gcc" "src/estimators/CMakeFiles/rfid_estimators.dir/zoe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rfid/CMakeFiles/rfid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rfid_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rfid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bfce_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
