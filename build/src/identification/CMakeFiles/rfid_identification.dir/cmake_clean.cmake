file(REMOVE_RECURSE
  "CMakeFiles/rfid_identification.dir/qprotocol.cpp.o"
  "CMakeFiles/rfid_identification.dir/qprotocol.cpp.o.d"
  "CMakeFiles/rfid_identification.dir/treewalk.cpp.o"
  "CMakeFiles/rfid_identification.dir/treewalk.cpp.o.d"
  "librfid_identification.a"
  "librfid_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
