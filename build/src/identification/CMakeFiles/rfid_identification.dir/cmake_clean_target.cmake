file(REMOVE_RECURSE
  "librfid_identification.a"
)
