# Empty dependencies file for rfid_identification.
# This may be replaced when dependencies are built.
