file(REMOVE_RECURSE
  "CMakeFiles/rfid_simlab.dir/churn.cpp.o"
  "CMakeFiles/rfid_simlab.dir/churn.cpp.o.d"
  "CMakeFiles/rfid_simlab.dir/experiment.cpp.o"
  "CMakeFiles/rfid_simlab.dir/experiment.cpp.o.d"
  "librfid_simlab.a"
  "librfid_simlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_simlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
