file(REMOVE_RECURSE
  "librfid_simlab.a"
)
