
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/churn.cpp" "src/sim/CMakeFiles/rfid_simlab.dir/churn.cpp.o" "gcc" "src/sim/CMakeFiles/rfid_simlab.dir/churn.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/rfid_simlab.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/rfid_simlab.dir/experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/estimators/CMakeFiles/rfid_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bfce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rfid/CMakeFiles/rfid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rfid_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rfid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
