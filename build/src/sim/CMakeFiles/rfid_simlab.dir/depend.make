# Empty dependencies file for rfid_simlab.
# This may be replaced when dependencies are built.
