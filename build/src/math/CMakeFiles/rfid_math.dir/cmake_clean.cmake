file(REMOVE_RECURSE
  "CMakeFiles/rfid_math.dir/erf.cpp.o"
  "CMakeFiles/rfid_math.dir/erf.cpp.o.d"
  "CMakeFiles/rfid_math.dir/hypothesis.cpp.o"
  "CMakeFiles/rfid_math.dir/hypothesis.cpp.o.d"
  "CMakeFiles/rfid_math.dir/stats.cpp.o"
  "CMakeFiles/rfid_math.dir/stats.cpp.o.d"
  "librfid_math.a"
  "librfid_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
