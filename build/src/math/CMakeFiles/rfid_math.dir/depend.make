# Empty dependencies file for rfid_math.
# This may be replaced when dependencies are built.
