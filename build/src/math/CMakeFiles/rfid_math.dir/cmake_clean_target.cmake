file(REMOVE_RECURSE
  "librfid_math.a"
)
