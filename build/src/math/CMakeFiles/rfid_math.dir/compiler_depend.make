# Empty compiler generated dependencies file for rfid_math.
# This may be replaced when dependencies are built.
