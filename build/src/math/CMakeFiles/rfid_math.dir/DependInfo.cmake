
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/erf.cpp" "src/math/CMakeFiles/rfid_math.dir/erf.cpp.o" "gcc" "src/math/CMakeFiles/rfid_math.dir/erf.cpp.o.d"
  "/root/repo/src/math/hypothesis.cpp" "src/math/CMakeFiles/rfid_math.dir/hypothesis.cpp.o" "gcc" "src/math/CMakeFiles/rfid_math.dir/hypothesis.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/rfid_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/rfid_math.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rfid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
