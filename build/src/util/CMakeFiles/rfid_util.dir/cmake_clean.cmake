file(REMOVE_RECURSE
  "CMakeFiles/rfid_util.dir/bitvector.cpp.o"
  "CMakeFiles/rfid_util.dir/bitvector.cpp.o.d"
  "CMakeFiles/rfid_util.dir/cli.cpp.o"
  "CMakeFiles/rfid_util.dir/cli.cpp.o.d"
  "CMakeFiles/rfid_util.dir/parallel.cpp.o"
  "CMakeFiles/rfid_util.dir/parallel.cpp.o.d"
  "CMakeFiles/rfid_util.dir/rng.cpp.o"
  "CMakeFiles/rfid_util.dir/rng.cpp.o.d"
  "CMakeFiles/rfid_util.dir/table.cpp.o"
  "CMakeFiles/rfid_util.dir/table.cpp.o.d"
  "librfid_util.a"
  "librfid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
