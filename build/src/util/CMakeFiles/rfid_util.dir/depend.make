# Empty dependencies file for rfid_util.
# This may be replaced when dependencies are built.
