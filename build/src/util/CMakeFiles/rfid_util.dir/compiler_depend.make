# Empty compiler generated dependencies file for rfid_util.
# This may be replaced when dependencies are built.
