file(REMOVE_RECURSE
  "librfid_util.a"
)
