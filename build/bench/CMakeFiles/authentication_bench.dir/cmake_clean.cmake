file(REMOVE_RECURSE
  "CMakeFiles/authentication_bench.dir/authentication_bench.cpp.o"
  "CMakeFiles/authentication_bench.dir/authentication_bench.cpp.o.d"
  "authentication_bench"
  "authentication_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authentication_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
