# Empty compiler generated dependencies file for authentication_bench.
# This may be replaced when dependencies are built.
