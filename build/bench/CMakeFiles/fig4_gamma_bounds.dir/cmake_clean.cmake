file(REMOVE_RECURSE
  "CMakeFiles/fig4_gamma_bounds.dir/fig4_gamma_bounds.cpp.o"
  "CMakeFiles/fig4_gamma_bounds.dir/fig4_gamma_bounds.cpp.o.d"
  "fig4_gamma_bounds"
  "fig4_gamma_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gamma_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
