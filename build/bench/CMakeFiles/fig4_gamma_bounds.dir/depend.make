# Empty dependencies file for fig4_gamma_bounds.
# This may be replaced when dependencies are built.
