# Empty compiler generated dependencies file for identification_vs_estimation.
# This may be replaced when dependencies are built.
