file(REMOVE_RECURSE
  "CMakeFiles/identification_vs_estimation.dir/identification_vs_estimation.cpp.o"
  "CMakeFiles/identification_vs_estimation.dir/identification_vs_estimation.cpp.o.d"
  "identification_vs_estimation"
  "identification_vs_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identification_vs_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
