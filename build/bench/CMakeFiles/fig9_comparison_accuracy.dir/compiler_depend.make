# Empty compiler generated dependencies file for fig9_comparison_accuracy.
# This may be replaced when dependencies are built.
