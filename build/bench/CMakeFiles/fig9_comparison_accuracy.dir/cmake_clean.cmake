file(REMOVE_RECURSE
  "CMakeFiles/fig9_comparison_accuracy.dir/fig9_comparison_accuracy.cpp.o"
  "CMakeFiles/fig9_comparison_accuracy.dir/fig9_comparison_accuracy.cpp.o.d"
  "fig9_comparison_accuracy"
  "fig9_comparison_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_comparison_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
