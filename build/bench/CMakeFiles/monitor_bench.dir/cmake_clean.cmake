file(REMOVE_RECURSE
  "CMakeFiles/monitor_bench.dir/monitor_bench.cpp.o"
  "CMakeFiles/monitor_bench.dir/monitor_bench.cpp.o.d"
  "monitor_bench"
  "monitor_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
