# Empty compiler generated dependencies file for monitor_bench.
# This may be replaced when dependencies are built.
