# Empty compiler generated dependencies file for variance_validation.
# This may be replaced when dependencies are built.
