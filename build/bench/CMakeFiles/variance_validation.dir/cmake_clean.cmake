file(REMOVE_RECURSE
  "CMakeFiles/variance_validation.dir/variance_validation.cpp.o"
  "CMakeFiles/variance_validation.dir/variance_validation.cpp.o.d"
  "variance_validation"
  "variance_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
