# Empty compiler generated dependencies file for differential_bench.
# This may be replaced when dependencies are built.
