file(REMOVE_RECURSE
  "CMakeFiles/differential_bench.dir/differential_bench.cpp.o"
  "CMakeFiles/differential_bench.dir/differential_bench.cpp.o.d"
  "differential_bench"
  "differential_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
