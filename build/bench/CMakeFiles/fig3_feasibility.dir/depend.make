# Empty dependencies file for fig3_feasibility.
# This may be replaced when dependencies are built.
