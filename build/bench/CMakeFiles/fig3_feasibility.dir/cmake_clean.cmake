file(REMOVE_RECURSE
  "CMakeFiles/fig3_feasibility.dir/fig3_feasibility.cpp.o"
  "CMakeFiles/fig3_feasibility.dir/fig3_feasibility.cpp.o.d"
  "fig3_feasibility"
  "fig3_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
