# Empty dependencies file for ablation_bfce.
# This may be replaced when dependencies are built.
