file(REMOVE_RECURSE
  "CMakeFiles/ablation_bfce.dir/ablation_bfce.cpp.o"
  "CMakeFiles/ablation_bfce.dir/ablation_bfce.cpp.o.d"
  "ablation_bfce"
  "ablation_bfce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bfce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
