# Empty dependencies file for fig6_distributions.
# This may be replaced when dependencies are built.
