file(REMOVE_RECURSE
  "CMakeFiles/fig6_distributions.dir/fig6_distributions.cpp.o"
  "CMakeFiles/fig6_distributions.dir/fig6_distributions.cpp.o.d"
  "fig6_distributions"
  "fig6_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
