# Empty dependencies file for fig10_comparison_time.
# This may be replaced when dependencies are built.
