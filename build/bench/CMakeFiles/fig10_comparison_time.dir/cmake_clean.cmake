file(REMOVE_RECURSE
  "CMakeFiles/fig10_comparison_time.dir/fig10_comparison_time.cpp.o"
  "CMakeFiles/fig10_comparison_time.dir/fig10_comparison_time.cpp.o.d"
  "fig10_comparison_time"
  "fig10_comparison_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_comparison_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
