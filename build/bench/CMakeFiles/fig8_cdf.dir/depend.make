# Empty dependencies file for fig8_cdf.
# This may be replaced when dependencies are built.
