file(REMOVE_RECURSE
  "CMakeFiles/zoo_comparison.dir/zoo_comparison.cpp.o"
  "CMakeFiles/zoo_comparison.dir/zoo_comparison.cpp.o.d"
  "zoo_comparison"
  "zoo_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
