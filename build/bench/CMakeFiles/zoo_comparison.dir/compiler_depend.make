# Empty compiler generated dependencies file for zoo_comparison.
# This may be replaced when dependencies are built.
