file(REMOVE_RECURSE
  "CMakeFiles/fig5_monotonicity.dir/fig5_monotonicity.cpp.o"
  "CMakeFiles/fig5_monotonicity.dir/fig5_monotonicity.cpp.o.d"
  "fig5_monotonicity"
  "fig5_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
