# Empty dependencies file for fig5_monotonicity.
# This may be replaced when dependencies are built.
