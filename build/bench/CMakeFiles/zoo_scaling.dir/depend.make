# Empty dependencies file for zoo_scaling.
# This may be replaced when dependencies are built.
