file(REMOVE_RECURSE
  "CMakeFiles/zoo_scaling.dir/zoo_scaling.cpp.o"
  "CMakeFiles/zoo_scaling.dir/zoo_scaling.cpp.o.d"
  "zoo_scaling"
  "zoo_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
