// Ablation of the C1G2 Q algorithm's knobs (beyond the paper; sizes the
// identification baseline that motivates estimation):
//   * c_step — how aggressively Qfp chases the optimum frame size;
//   * q_initial — how wrong the first frame may be.
// Output: slots per tag and total airtime; the floor is e ≈ 2.72
// slots/tag for ideal framed ALOHA.

#include "bench_common.hpp"
#include "identification/qprotocol.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20000));
  bench::PopulationCache pops(cli.seed());
  const auto& pop = pops.get(n, rfid::TagIdDistribution::kT1Uniform);

  util::Table c_table({"c_step", "slots_per_tag", "collision_share",
                       "time_s"});
  for (const double c : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    identification::QProtocolParams params;
    params.c_step = c;
    identification::QProtocol q(params);
    rfid::ReaderContext ctx(pop, cli.seed() + 1);
    const auto out = q.identify(ctx);
    c_table.add_row(
        {util::Table::num(c, 1),
         util::Table::num(static_cast<double>(out.total_slots) /
                              static_cast<double>(n),
                          2),
         util::Table::num(static_cast<double>(out.collision_slots) /
                              static_cast<double>(out.total_slots),
                          3),
         util::Table::num(out.total_seconds(ctx.timing()), 1)});
  }
  bench::emit(cli, "Q algorithm: adaptation step sweep (n=" +
                       std::to_string(n) + ")",
              c_table);

  util::Table q_table({"q_initial", "slots_per_tag", "time_s"});
  for (const std::uint32_t q0 : {1u, 4u, 8u, 12u, 15u}) {
    identification::QProtocolParams params;
    params.q_initial = q0;
    identification::QProtocol q(params);
    rfid::ReaderContext ctx(pop, cli.seed() + 2);
    const auto out = q.identify(ctx);
    q_table.add_row(
        {util::Table::num(static_cast<std::uint64_t>(q0)),
         util::Table::num(static_cast<double>(out.total_slots) /
                              static_cast<double>(n),
                          2),
         util::Table::num(out.total_seconds(ctx.timing()), 1)});
  }
  bench::emit(cli, "Q algorithm: initial Q sweep", q_table);

  std::puts("shape check: slots/tag stays in [3, 5] across sane settings "
            "(framed-ALOHA floor is e = 2.72); a bad q_initial costs a "
            "few adaptation frames, not the run — identification time is "
            "dominated by the O(n) singleton exchanges either way.");
  return 0;
}
