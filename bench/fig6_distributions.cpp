// Fig 6 — the three tagID input sets: T1 uniform, T2 approximate normal,
// T3 normal, over [1, 10^15].
//
// Prints a 20-bin histogram per distribution; the shapes (flat /
// broad bell / tight bell) are the figure.

#include "bench_common.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 50000));
  constexpr int kBins = 20;
  constexpr double kIdMax = 1e15;

  util::Table table({"bin_low(1e13)", "T1", "T2", "T3"});
  std::vector<std::vector<std::size_t>> hist(
      3, std::vector<std::size_t>(kBins, 0));
  for (int d = 0; d < 3; ++d) {
    const auto pop = rfid::make_population(
        n, rfid::kAllDistributions[d], cli.seed() + static_cast<std::uint64_t>(d));
    for (const rfid::Tag& t : pop.tags()) {
      auto bin = static_cast<int>(static_cast<double>(t.id) / kIdMax * kBins);
      if (bin >= kBins) bin = kBins - 1;
      ++hist[static_cast<std::size_t>(d)][static_cast<std::size_t>(bin)];
    }
  }
  for (int b = 0; b < kBins; ++b) {
    table.add_row({util::Table::num(100.0 * b / kBins, 0),
                   util::Table::num(static_cast<std::uint64_t>(hist[0][static_cast<std::size_t>(b)])),
                   util::Table::num(static_cast<std::uint64_t>(hist[1][static_cast<std::size_t>(b)])),
                   util::Table::num(static_cast<std::uint64_t>(hist[2][static_cast<std::size_t>(b)]))});
  }
  bench::emit(cli, "Fig 6: tagID histograms over [1, 1e15], n=" +
                       std::to_string(n),
              table);
  std::puts("shape check: T1 flat; T2 bell (Irwin-Hall, zero mass at the "
            "edges); T3 tighter bell (sigma = range/8).");
  return 0;
}
