// Fleet workload for the estimation service: replays thousands of
// mixed estimation jobs (population sizes × (ε, δ) requirements ×
// protocols) through EstimationService and reports what a back-end
// fleet would ask of it — throughput, p50/p95/p99 latency, queue
// waits, planner-cache hit rate and the aggregated engine counters.
//
// The workload runs twice, with and without the shared Theorem-4
// planner cache, verifies the two passes are bit-identical job for job
// (caching must never change an estimate), and writes the whole record
// as machine-readable JSON to BENCH_service.json.
//
//   $ fleet_service [--jobs=2000] [--workers=0] [--queue=256]
//                   [--attempts=2] [--seed=...] [--exact] [--csv]
//                   [--shards=N]
//
// --shards=N turns on the sharded exact-mode population walk inside
// every job's FrameEngine (N = 0 picks the host default); estimates are
// unchanged by construction — the sharded walk is a pure function of
// the job seed for any shard count.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "util/rng.hpp"

using namespace bfce;

namespace {

struct FleetOutcome {
  std::vector<service::JobResult> results;
  service::ServiceMetrics metrics;
  double wall_s = 0.0;
  /// Crash image cut after the drain (every job terminal) plus how long
  /// the cut itself took — the snapshot/restore latency stage reuses it
  /// instead of executing a third pass.
  service::ServiceSnapshot snapshot;
  double snapshot_cut_s = 0.0;
};

/// The mixed workload: job i is a pure function of (seed, i), so both
/// passes and any two runs with the same flags submit identical specs.
std::vector<service::JobSpec> build_workload(
    bench::PopulationCache& pops, std::size_t jobs, std::uint64_t seed,
    std::uint32_t attempts) {
  static const std::size_t kSizes[] = {5000, 50000, 200000, 1000000};
  static const estimators::Requirement kReqs[] = {
      {0.05, 0.05}, {0.03, 0.05}, {0.1, 0.1}, {0.02, 0.01}};

  std::vector<service::JobSpec> specs;
  specs.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    service::JobSpec spec;
    spec.population =
        &pops.get(kSizes[i % 4], rfid::TagIdDistribution::kT1Uniform);
    spec.estimator = (i % 8 == 7) ? "ZOE" : "BFCE";
    spec.req = kReqs[(i / 4) % 4];
    spec.seed = util::SeedMixer(seed).absorb(std::uint64_t{i}).value();
    spec.max_attempts = attempts;
    specs.push_back(spec);
  }
  return specs;
}

FleetOutcome run_fleet(const std::vector<service::JobSpec>& specs,
                       const service::ServiceConfig& cfg) {
  FleetOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  service::EstimationService svc(cfg);
  std::vector<service::JobId> ids;
  ids.reserve(specs.size());
  for (const service::JobSpec& spec : specs) ids.push_back(svc.submit(spec));
  svc.drain();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  out.results.reserve(ids.size());
  for (const service::JobId id : ids) out.results.push_back(svc.wait(id));
  out.metrics = svc.metrics();
  const auto s0 = std::chrono::steady_clock::now();
  out.snapshot = svc.snapshot();
  out.snapshot_cut_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - s0)
                           .count();
  return out;
}

/// Keeps the optimizer from eliding a measured planner call.
inline void benchmark_guard(const core::PersistenceChoice& c) {
  asm volatile("" : : "g"(&c) : "memory");
}

/// ns per call of `body` over enough repetitions to be stable.
template <typename F>
double ns_per_call(F&& body) {
  using clock = std::chrono::steady_clock;
  std::size_t reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < reps; ++i) body();
    const double s =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (s > 0.05) return s * 1e9 / static_cast<double>(reps);
    reps *= 4;
  }
}

bool bit_identical(const std::vector<service::JobResult>& a,
                   const std::vector<service::JobResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].status != b[i].status || a[i].attempts != b[i].attempts ||
        a[i].outcome.n_hat != b[i].outcome.n_hat ||
        a[i].outcome.ci_low != b[i].outcome.ci_low ||
        a[i].outcome.ci_high != b[i].outcome.ci_high ||
        a[i].airtime_s != b[i].airtime_s) {
      std::fprintf(stderr, "job %zu diverged between passes\n", i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"jobs", "workers", "queue", "attempts", "seed",
                       "exact", "csv", "shards"});
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 2000));
  const auto workers = static_cast<unsigned>(cli.get_int("workers", 0));
  const auto queue =
      static_cast<std::size_t>(cli.get_int("queue", 256));
  const auto attempts =
      static_cast<std::uint32_t>(cli.get_int("attempts", 2));
  const std::int64_t shards =
      cli.get_int("shards", -1);  // -1 ⇒ sequential walk

  bench::PopulationCache pops(cli.seed());
  const auto specs = build_workload(pops, jobs, cli.seed(), attempts);

  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = queue;
  cfg.mode = bench::mode_from(cli);
  if (shards >= 0) {
    cfg.engine_policy =
        rfid::ExecutionPolicy::sharded(static_cast<std::uint32_t>(shards));
  }

  // Pass 1: shared planner cache.
  core::PersistencePlanner planner;
  cfg.planner = &planner;
  std::printf("fleet pass 1/2: %zu jobs, planner cache ON...\n", jobs);
  const FleetOutcome cached = run_fleet(specs, cfg);

  // Pass 2: every job runs the full Theorem-4 search.
  cfg.planner = nullptr;
  std::printf("fleet pass 2/2: %zu jobs, planner cache OFF...\n", jobs);
  const FleetOutcome uncached = run_fleet(specs, cfg);

  const bool identical = bit_identical(cached.results, uncached.results);
  const service::ServiceMetrics& m = cached.metrics;
  const core::PlannerCacheStats planner_stats = planner.stats();

  util::Table table({"pass", "wall_s", "jobs_per_s", "p50_ms", "p95_ms",
                     "p99_ms", "hit_rate"});
  const auto row = [&](const char* label, const FleetOutcome& f,
                       double hit_rate) {
    table.add_row({label, util::Table::num(f.wall_s),
                   util::Table::num(static_cast<double>(jobs) / f.wall_s),
                   util::Table::num(f.metrics.latency.p50_s * 1e3),
                   util::Table::num(f.metrics.latency.p95_s * 1e3),
                   util::Table::num(f.metrics.latency.p99_s * 1e3),
                   util::Table::num(hit_rate)});
  };
  row("cache_on", cached, planner_stats.hit_rate());
  row("cache_off", uncached, 0.0);
  bench::emit(cli, "fleet_service: mixed workload, cache on vs off", table);

  std::printf("%s\n", service::render_service_metrics(m).c_str());
  std::printf("cached results bit-identical to uncached: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("planner-search wall saved: %.2fx end-to-end\n",
              uncached.wall_s / cached.wall_s);

  // ---- Planner hot path, isolated ----------------------------------
  // Typical keys early-exit the Theorem-4 scan after a few candidates;
  // the worst case (no satisfying p, e.g. a tiny n̂_low under a tight
  // requirement) walks all 1023. The cache flattens both to one lookup.
  core::PersistencePlanner micro;
  micro.choose(250000.0, 8192, 3, 0.05, 0.05);  // warm the key
  const double hit_ns = ns_per_call([&] {
    benchmark_guard(micro.choose(250000.0, 8192, 3, 0.05, 0.05));
  });
  const double typical_ns = ns_per_call([&] {
    benchmark_guard(
        core::PersistencePlanner::search(250000.0, 8192, 3, 0.05, 0.05));
  });
  const double worst_ns = ns_per_call([&] {
    benchmark_guard(
        core::PersistencePlanner::search(50.0, 8192, 3, 0.01, 0.01));
  });
  std::printf(
      "planner hot path: cache hit %.0f ns, search %.0f ns (typical) / "
      "%.0f ns (full 1023-candidate scan) per choice\n",
      hit_ns, typical_ns, worst_ns);

  // ---- Snapshot/restore latency ------------------------------------
  // The cached pass's crash image carries every terminal result plus
  // the warm planner cache. Measure the full recovery path on it:
  // encode, crash-atomic save (includes the fsyncs), load+decode, and
  // restore-by-reaccounting into a fresh service.
  using clock = std::chrono::steady_clock;
  const auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  const auto e0 = clock::now();
  const std::vector<std::uint8_t> image =
      service::encode_snapshot(cached.snapshot);
  const double encode_s = seconds_since(e0);

  const char* snap_path = "fleet_service.snapshot";
  const auto w0 = clock::now();
  const auto save_err = service::save_snapshot(cached.snapshot, snap_path);
  const double save_s = seconds_since(w0);

  service::ServiceSnapshot loaded;
  const auto l0 = clock::now();
  const auto load_err = service::load_snapshot(snap_path, loaded);
  const double load_s = seconds_since(l0);
  std::remove(snap_path);

  double restore_s = 0.0;
  bool restore_ok = false;
  if (save_err == service::SnapshotError::kNone &&
      load_err == service::SnapshotError::kNone) {
    core::PersistencePlanner restored_planner;
    service::ServiceConfig restore_cfg = cfg;
    restore_cfg.planner = &restored_planner;
    service::EstimationService restored(restore_cfg);
    const auto r0 = clock::now();
    restore_ok = restored.restore(loaded) == service::SnapshotError::kNone;
    restore_s = seconds_since(r0);
    restore_ok = restore_ok &&
                 restored.metrics().completed == cached.results.size() &&
                 restored_planner.stats().entries ==
                     planner_stats.entries;
  }
  std::printf(
      "snapshot: %zu results, %zu planner keys, %zu bytes; cut %.2f ms, "
      "encode %.2f ms, save %.2f ms, load %.2f ms, restore %.2f ms (%s)\n",
      cached.snapshot.completed.size(),
      cached.snapshot.planner.entries.size(), image.size(),
      cached.snapshot_cut_s * 1e3, encode_s * 1e3, save_s * 1e3,
      load_s * 1e3, restore_s * 1e3,
      restore_ok ? "restored state verified" : "RESTORE FAILED");

  // ---- Executor dispatch overhead ----------------------------------
  // Pool-cold vs pool-warm fan-out latency: the cold number is what
  // every sharded frame walk paid per call before the persistent
  // executor; the warm number is what a dispatch costs now that the
  // workers stay parked between calls.
  const bench::PoolLatency pool = bench::measure_pool_latency();
  std::printf(
      "executor dispatch (%u lanes): pool-cold %.3f ms, pool-warm "
      "%.3f ms (%.0fx reuse win)\n",
      pool.lanes, pool.cold_ms, pool.warm_ms,
      pool.warm_ms > 0.0 ? pool.cold_ms / pool.warm_ms : 0.0);

  // ---- BENCH_service.json ------------------------------------------
  std::string json = "{\n  \"bench\": \"fleet_service\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"jobs\": %zu,\n  \"workers\": %u,\n"
                "  \"queue_capacity\": %zu,\n  \"attempts\": %u,\n"
                "  \"mode\": \"%s\",\n  \"shards\": %lld,\n"
                "  \"seed\": %llu,\n",
                jobs, m.workers, queue, attempts,
                cfg.mode == rfid::FrameMode::kExact ? "exact" : "sampled",
                static_cast<long long>(shards),
                static_cast<unsigned long long>(cli.seed()));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"wall_s\": %.6f,\n  \"throughput_jobs_per_s\": %.3f,\n"
                "  \"uncached_wall_s\": %.6f,\n  \"cache_speedup\": %.4f,\n"
                "  \"cached_matches_uncached\": %s,\n",
                cached.wall_s, static_cast<double>(jobs) / cached.wall_s,
                uncached.wall_s, uncached.wall_s / cached.wall_s,
                identical ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"planner_ns\": {\"cache_hit\": %.1f, "
                "\"search_typical\": %.1f, \"search_full_scan\": %.1f},\n",
                hit_ns, typical_ns, worst_ns);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"snapshot\": {\"results\": %zu, \"planner_keys\": %zu, "
                "\"bytes\": %zu, \"cut_ms\": %.3f, \"encode_ms\": %.3f, "
                "\"save_ms\": %.3f, \"load_ms\": %.3f, \"restore_ms\": %.3f, "
                "\"restore_verified\": %s},\n",
                cached.snapshot.completed.size(),
                cached.snapshot.planner.entries.size(), image.size(),
                cached.snapshot_cut_s * 1e3, encode_s * 1e3, save_s * 1e3,
                load_s * 1e3, restore_s * 1e3,
                restore_ok ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"executor\": {\"lanes\": %u, \"cold_dispatch_ms\": %.4f, "
                "\"warm_dispatch_ms\": %.4f},\n",
                pool.lanes, pool.cold_ms, pool.warm_ms);
  json += buf;
  json += "  \"metrics\": ";
  std::string metrics_json = service::service_metrics_json(m);
  while (!metrics_json.empty() && metrics_json.back() == '\n') {
    metrics_json.pop_back();
  }
  json += metrics_json;
  json += "\n}\n";

  const char* path = "BENCH_service.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return 1;
  }
  return (identical && restore_ok) ? 0 : 1;
}
