// Micro-benchmarks (google-benchmark): hash-family throughput.
// Engineering benches, not paper figures — they justify the "lightweight"
// label of the paper's tag-side hash and size the simulator's hot path.

#include <benchmark/benchmark.h>

#include "hash/mix.hpp"
#include "hash/persistence.hpp"
#include "hash/slot_hash.hpp"

namespace {

void BM_MixWithSeed(benchmark::State& state) {
  std::uint64_t key = 0x12345678;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfce::hash::mix_with_seed(key, 42));
    ++key;
  }
}
BENCHMARK(BM_MixWithSeed);

void BM_IdealSlotHash(benchmark::State& state) {
  const bfce::hash::IdealSlotHash h(7);
  std::uint64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.slot(id, 8192));
    ++id;
  }
}
BENCHMARK(BM_IdealSlotHash);

void BM_LightweightSlotHash(benchmark::State& state) {
  const bfce::hash::LightweightSlotHash h(0xBEEF);
  std::uint32_t rn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.slot(rn, 8192));
    ++rn;
  }
}
BENCHMARK(BM_LightweightSlotHash);

void BM_GeometricSlotHash(benchmark::State& state) {
  const bfce::hash::GeometricSlotHash g(11);
  std::uint64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.slot(id, 32));
    ++id;
  }
}
BENCHMARK(BM_GeometricSlotHash);

void BM_RnBitsPersistence(benchmark::State& state) {
  std::uint32_t rn = 0xABCD;
  std::uint32_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bfce::hash::rn_bits_respond(rn, slot, 99, 512));
    ++rn;
    slot = (slot + 1) & 8191;
  }
}
BENCHMARK(BM_RnBitsPersistence);

}  // namespace

BENCHMARK_MAIN();
