// Scaling study (beyond the paper): accuracy and airtime of every
// estimator as the population grows 100× — the "which estimator when"
// companion to zoo_comparison's single-scenario table.

#include "bench_common.hpp"
#include "estimators/registry.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  bench::PopulationCache pops(cli.seed());

  util::Table table({"protocol", "n", "acc_mean", "time_mean_s",
                     "violation_rate"});
  for (const std::string& name : estimators::estimator_names()) {
    for (std::size_t n : {10000UL, 100000UL, 1000000UL}) {
      sim::ExperimentConfig cfg;
      cfg.trials = trials;
      cfg.req = {0.05, 0.05};
      cfg.mode = rfid::FrameMode::kSampled;
      cfg.seed = cli.seed() ^ (n * 31337) ^ std::hash<std::string>{}(name);
      const auto records = sim::run_experiment(
          pops.get(n, rfid::TagIdDistribution::kT2ApproxNormal),
          [&name] { return estimators::make_estimator(name); }, cfg);
      const auto s = sim::summarize_records(records, 0.05);
      table.add_row({name, util::Table::num(static_cast<std::uint64_t>(n)),
                     util::Table::num(s.accuracy.mean, 4),
                     util::Table::num(s.time_s.mean, 4),
                     util::Table::num(s.violation_rate, 3)});
    }
  }
  bench::emit(cli, "Scaling 10k -> 1M tags, (eps,delta)=(0.05,0.05), T2",
              table);
  std::puts("shape check: BFCE/SRC/EZB/MLE/UPE airtime is flat in n "
            "(slot counts are load-normalised); ZOE/FNEB stay expensive "
            "everywhere (per-frame broadcasts); LOF/PET track magnitude "
            "only. BFCE is the one protocol that is simultaneously flat, "
            "guaranteed, and broadcast-light.");
  return 0;
}
