// Fig 4 — the scalability envelope γ = −ln(ρ̄)/(k·p) over the
// {1/1024 … 1023/1024} grid of (p, ρ̄), for k = 3.
//
// Paper numbers to reproduce: 0.000326 ≤ γ ≤ 2365.9, hence a maximum
// estimable cardinality of γ_max·w ≈ 19.4 million for w = 8192.

#include <cmath>

#include "bench_common.hpp"
#include "core/analysis.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {});

  // Coarse surface sample (the 3-D plot of the figure).
  util::Table surface({"p", "rho=0.05", "rho=0.25", "rho=0.50", "rho=0.75",
                       "rho=0.95"});
  for (const double p : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    std::vector<std::string> row{util::Table::num(p, 2)};
    for (const double rho : {0.05, 0.25, 0.50, 0.75, 0.95}) {
      row.push_back(util::Table::num(-std::log(rho) / (3.0 * p), 4));
    }
    surface.add_row(std::move(row));
  }
  bench::emit(cli, "Fig 4: gamma = -ln(rho)/(3p) surface (sample)", surface);

  const core::GammaBounds b = core::gamma_bounds(3);
  util::Table bounds({"quantity", "measured", "paper"});
  bounds.add_row({"gamma_min", util::Table::num(b.min, 6), "0.000326"});
  bounds.add_row({"gamma_max", util::Table::num(b.max, 1), "2365.9"});
  bounds.add_row({"at p (min)", util::Table::num(b.p_at_min, 6), "-"});
  bounds.add_row({"at rho (min)", util::Table::num(b.rho_at_min, 6), "-"});
  bounds.add_row({"max cardinality (w=8192)",
                  util::Table::num(b.max_cardinality(8192), 0),
                  ">19 million"});
  bench::emit(cli, "Fig 4: envelope on the i/1024 grid", bounds);
  return 0;
}
