#pragma once
// Shared sweep machinery for the Fig 9 / Fig 10 comparisons of BFCE
// against ZOE and SRC on the T2 distribution.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/bfce.hpp"
#include "estimators/registry.hpp"
#include "rfid/frame_engine.hpp"
#include "util/rng.hpp"

namespace bfce::bench {

inline const std::vector<std::string>& comparison_protocols() {
  static const std::vector<std::string> kNames = {"BFCE", "ZOE", "SRC"};
  return kNames;
}

/// Engine counters accumulated across every comparison_point of this
/// process; benches print them at the end via core::render_engine_counters.
inline rfid::EngineCounters& comparison_counters() {
  static rfid::EngineCounters counters;
  return counters;
}

/// One comparison point: protocol × (n, ε, δ) on T2. The per-point seed
/// absorbs every sweep coordinate through util::SeedMixer, so nearby
/// (n, ε, δ) points and distinct protocols get uncorrelated streams.
/// `--shards=N` routes every trial's frames through the sharded
/// pipeline (exact walk / batched sampler; 0 ⇒ default thread count).
inline sim::ExperimentSummary comparison_point(
    PopulationCache& pops, const std::string& protocol, std::size_t n,
    double eps, double delta, const util::Cli& cli, std::size_t trials) {
  sim::ExperimentConfig cfg;
  cfg.trials = trials;
  cfg.req = {eps, delta};
  cfg.mode = mode_from(cli);
  const std::int64_t shards = cli.get_int("shards", -1);
  if (shards >= 0) {
    cfg.engine_policy =
        rfid::ExecutionPolicy::sharded(static_cast<std::uint32_t>(shards));
  }
  cfg.seed = util::SeedMixer(cli.seed())
                 .absorb(static_cast<std::uint64_t>(n))
                 .absorb(eps)
                 .absorb(delta)
                 .absorb(std::string_view(protocol))
                 .value();
  const auto& pop = pops.get(n, rfid::TagIdDistribution::kT2ApproxNormal);
  const auto records = sim::run_experiment(
      pop,
      [&protocol] { return estimators::make_estimator(protocol); },
      cfg);
  sim::ExperimentSummary summary = sim::summarize_records(records, eps);
  comparison_counters() += summary.counters;
  return summary;
}

/// The x-axes of Fig 9 / Fig 10.
inline const std::vector<std::size_t>& comparison_ns() {
  static const std::vector<std::size_t> kNs = {50000, 100000, 200000,
                                               500000, 1000000};
  return kNs;
}

inline const std::vector<double>& comparison_eps() {
  static const std::vector<double> kEps = {0.05, 0.10, 0.15, 0.20, 0.25,
                                           0.30};
  return kEps;
}

inline const std::vector<double>& comparison_deltas() {
  static const std::vector<double> kDeltas = {0.05, 0.10, 0.15, 0.20, 0.25,
                                              0.30};
  return kDeltas;
}

}  // namespace bfce::bench
