// Differential (churn) estimation accuracy across churn sizes (beyond
// the paper): how small a departure/arrival wave can two aligned Bloom
// snapshots resolve, and at what airtime?

#include "bench_common.hpp"
#include "core/differential.hpp"
#include "math/stats.hpp"
#include "rfid/population.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n", "trials"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 50000));
  const auto trials = static_cast<int>(cli.get_int("trials", 20));

  util::Table table({"departed_frac", "arrived_frac", "dep_err_mean",
                     "arr_err_mean", "stay_err_mean"});
  for (const auto& frac : std::vector<std::pair<double, double>>{
           {0.01, 0.0}, {0.05, 0.0}, {0.10, 0.05}, {0.20, 0.10},
           {0.40, 0.20}}) {
    const auto dep = static_cast<std::size_t>(static_cast<double>(n) *
                                              frac.first);
    const auto arr = static_cast<std::size_t>(static_cast<double>(n) *
                                              frac.second);
    math::RunningStats dep_err;
    math::RunningStats arr_err;
    math::RunningStats stay_err;
    for (int t = 0; t < trials; ++t) {
      const auto all = rfid::make_population(
          n + arr, rfid::TagIdDistribution::kT1Uniform,
          cli.seed() + static_cast<std::uint64_t>(t) * 37 + dep);
      std::vector<rfid::Tag> ref(all.tags().begin(),
                                 all.tags().begin() + static_cast<long>(n));
      std::vector<rfid::Tag> cur(all.tags().begin() +
                                     static_cast<long>(dep),
                                 all.tags().end());
      core::DifferentialConfig cfg;
      cfg.tune_for(static_cast<double>(n + arr));
      const rfid::Channel ch;
      util::Xoshiro256ss rng(cli.seed() + static_cast<std::uint64_t>(t));
      const auto s_ref = core::take_snapshot(
          rfid::TagPopulation{std::move(ref)}, cfg, ch, rng);
      const auto s_cur = core::take_snapshot(
          rfid::TagPopulation{std::move(cur)}, cfg, ch, rng);
      const auto churn = core::compare_snapshots(s_ref, s_cur, cfg);
      dep_err.add(std::fabs(churn.departed - static_cast<double>(dep)) /
                  static_cast<double>(n));
      arr_err.add(std::fabs(churn.arrived - static_cast<double>(arr)) /
                  static_cast<double>(n));
      stay_err.add(std::fabs(churn.stayed -
                             static_cast<double>(n - dep)) /
                   static_cast<double>(n));
    }
    table.add_row({util::Table::num(frac.first, 2),
                   util::Table::num(frac.second, 2),
                   util::Table::num(dep_err.mean(), 4),
                   util::Table::num(arr_err.mean(), 4),
                   util::Table::num(stay_err.mean(), 4)});
  }
  bench::emit(cli,
              "Differential churn estimation, n=" + std::to_string(n) +
                  " (errors relative to n; 2 snapshots = ~0.32 s airtime)",
              table);
  std::puts("shape check: component errors stay ~1-2% of n regardless of "
            "churn size — two 8192-bit snapshots resolve departure waves "
            "down to a few percent of the population.");
  return 0;
}
