// Identification vs estimation (beyond the paper's figures; quantifies
// §III-A / Fig 1's motivation): how much airtime does exact inventory
// cost compared with BFCE's constant-time estimate, as n grows?

#include <memory>

#include "bench_common.hpp"
#include "core/bfce.hpp"
#include "identification/qprotocol.hpp"
#include "identification/treewalk.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {});
  bench::PopulationCache pops(cli.seed());

  util::Table table({"n", "Q_protocol_s", "TreeWalk_s", "BFCE_s",
                     "Q/BFCE", "slots_per_tag(Q)"});
  for (std::size_t n : {1000UL, 5000UL, 20000UL, 50000UL, 100000UL}) {
    const auto& pop = pops.get(n, rfid::TagIdDistribution::kT1Uniform);

    rfid::ReaderContext q_ctx(pop, cli.seed() + 1);
    identification::QProtocol q;
    const auto q_out = q.identify(q_ctx);

    rfid::ReaderContext t_ctx(pop, cli.seed() + 2);
    identification::TreeWalk tree;
    const auto t_out = tree.identify(t_ctx);

    rfid::ReaderContext b_ctx(pop, cli.seed() + 3,
                              rfid::FrameMode::kSampled);
    core::BfceEstimator bfce;
    const auto b_out = bfce.estimate(b_ctx, {0.05, 0.05});

    const double tq = q_out.total_seconds(q_ctx.timing());
    const double tt = t_out.total_seconds(t_ctx.timing());
    const double tb = b_out.airtime.total_seconds(b_ctx.timing());
    table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                   util::Table::num(tq, 2), util::Table::num(tt, 2),
                   util::Table::num(tb, 3), util::Table::num(tq / tb, 0),
                   util::Table::num(
                       static_cast<double>(q_out.total_slots) /
                           static_cast<double>(n),
                       2)});
  }
  bench::emit(cli, "Exact identification vs BFCE estimation", table);
  std::puts("shape check: identification airtime grows linearly in n "
            "(minutes at 10^5 tags); BFCE stays ~0.2 s — the gap that "
            "motivates cardinality estimation in the first place.");
  return 0;
}
