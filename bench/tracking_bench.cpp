// Continuous-tracking bench: runs the three canonical churn scenarios
// (steady, ramp, step) through TrackingSession and measures what the
// Kalman fusion buys over the raw per-round BFCE estimates —
// tracked-vs-raw RMSE, rounds per second, and how many rounds the
// filter needs to reach steady state after the step scenario's jump.
//
// Writes the whole record to BENCH_tracking.json and exits non-zero if
// fusion failed to beat the raw rounds on the ramp or step scenario
// (the PR's acceptance criterion, so CI can hold the line).
//
//   $ tracking_bench [--rounds=60] [--n0=20000] [--q=0.02] [--seed=...]
//                    [--exact] [--csv] [--smoke] [--shards=N]
//
// --shards=N routes every round's frames through the sharded
// plan/render/reduce pipeline (0 ⇒ default thread count). Trajectories
// are a pure function of the seed for any shard count, so this only
// changes wall-clock, never the tracked numbers.
//
// --smoke shrinks the run (small population, few rounds) so the CI
// smoke stage finishes in seconds while still exercising every path.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "tracking/session.hpp"
#include "util/rng.hpp"

using namespace bfce;

namespace {

struct ScenarioRecord {
  std::string name;
  tracking::TrackSummary summary;
  double wall_s = 0.0;
  double rounds_per_s = 0.0;
  std::size_t settle_round = 0;  ///< step only: rounds to re-converge
};

/// First round after `from` whose tracked estimate stays within `band`
/// of the ground truth for the rest of the trajectory — the filter's
/// steady-state latency after a disturbance.
std::size_t settle_round_after(const std::vector<tracking::TrackPoint>& traj,
                               std::size_t from, double band) {
  std::size_t settled = traj.size();
  for (std::size_t i = traj.size(); i-- > from;) {
    const double n = static_cast<double>(traj[i].true_n);
    if (std::fabs(traj[i].tracked_n - n) > band * n) break;
    settled = i;
  }
  return settled;
}

ScenarioRecord run_scenario(const std::string& name,
                            const tracking::SessionConfig& config,
                            const tracking::ChurnSchedule& schedule) {
  ScenarioRecord rec;
  rec.name = name;
  const auto t0 = std::chrono::steady_clock::now();
  tracking::TrackingSession session(config);
  session.run(schedule);
  rec.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  rec.summary = session.summary();
  rec.rounds_per_s = rec.wall_s > 0.0
                         ? static_cast<double>(rec.summary.rounds) / rec.wall_s
                         : 0.0;
  if (name == "step") {
    // The jump lands after the first third; measure recovery from there.
    rec.settle_round =
        settle_round_after(session.trajectory(), session.trajectory().size() / 3,
                           config.req.epsilon);
  }
  return rec;
}

void append_scenario_json(std::string& json, const ScenarioRecord& rec,
                          bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"scenario\": \"%s\", \"rounds\": %zu, \"raw_rmse\": %.4f, "
      "\"tracked_rmse\": %.4f, \"improvement\": %.4f, "
      "\"raw_rel_rmse\": %.6f, \"tracked_rel_rmse\": %.6f, "
      "\"innovation_rms\": %.4f, \"residual_rms\": %.4f, "
      "\"design_misses\": %zu, \"airtime_s\": %.4f, \"wall_s\": %.4f, "
      "\"rounds_per_s\": %.2f, \"settle_round\": %zu}%s\n",
      rec.name.c_str(), rec.summary.rounds, rec.summary.raw_rmse,
      rec.summary.tracked_rmse, rec.summary.improvement(),
      rec.summary.raw_rel_rmse, rec.summary.tracked_rel_rmse,
      rec.summary.innovation_rms, rec.summary.residual_rms,
      rec.summary.design_misses, rec.summary.airtime_s, rec.wall_s,
      rec.rounds_per_s, rec.settle_round, last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"rounds", "n0", "q", "seed", "exact",
                                   "csv", "smoke", "shards"});
  const bool smoke = cli.has("smoke");
  const auto rounds =
      static_cast<std::size_t>(cli.get_int("rounds", smoke ? 12 : 60));
  const double n0 = cli.get_double("n0", smoke ? 4000.0 : 20000.0);
  const double q = cli.get_double("q", 0.02);

  core::PersistencePlanner planner;
  tracking::SessionConfig cfg;
  cfg.initial_population = static_cast<std::size_t>(n0);
  cfg.params.planner = &planner;
  cfg.req = {0.05, 0.05};
  cfg.mode = bench::mode_from(cli);
  cfg.seed = cli.seed();
  const std::int64_t shards = cli.get_int("shards", -1);
  if (shards >= 0) {
    cfg.policy =
        rfid::ExecutionPolicy::sharded(static_cast<std::uint32_t>(shards));
  }

  std::vector<ScenarioRecord> records;
  records.push_back(
      run_scenario("steady", cfg, tracking::steady_scenario(rounds, q, n0)));
  records.push_back(
      run_scenario("ramp", cfg, tracking::ramp_scenario(rounds, q, n0, 2.0)));
  records.push_back(
      run_scenario("step", cfg, tracking::step_scenario(rounds, q, n0, 1.5)));

  util::Table table({"scenario", "rounds", "raw_rmse", "tracked_rmse",
                     "improve", "rounds_per_s", "settle"});
  for (const ScenarioRecord& rec : records) {
    table.add_row({rec.name,
                   util::Table::num(static_cast<double>(rec.summary.rounds)),
                   util::Table::num(rec.summary.raw_rmse),
                   util::Table::num(rec.summary.tracked_rmse),
                   util::Table::num(rec.summary.improvement()),
                   util::Table::num(rec.rounds_per_s),
                   util::Table::num(static_cast<double>(rec.settle_round))});
  }
  bench::emit(cli, "tracking_bench: Kalman fusion vs raw BFCE rounds",
              table);

  // Acceptance criterion: fusion must beat the raw rounds where the
  // population is actually moving.
  bool pass = true;
  for (const ScenarioRecord& rec : records) {
    if (rec.name == "steady") continue;
    if (rec.summary.tracked_rmse >= rec.summary.raw_rmse) {
      std::fprintf(stderr,
                   "FAIL: %s scenario tracked RMSE %.2f >= raw %.2f\n",
                   rec.name.c_str(), rec.summary.tracked_rmse,
                   rec.summary.raw_rmse);
      pass = false;
    }
  }
  std::printf("tracked beats raw on ramp and step: %s\n",
              pass ? "yes" : "NO - BUG");

  // Dispatch-overhead stage: a tracking round issues one sharded walk
  // per frame, so the pool-cold vs pool-warm gap is exactly the per-
  // round tax the persistent executor removed. (BENCH_service.json
  // carries the committed record; here it is informational.)
  const bench::PoolLatency pool = bench::measure_pool_latency();
  std::printf(
      "executor dispatch (%u lanes): pool-cold %.3f ms, pool-warm "
      "%.3f ms (%.0fx reuse win)\n",
      pool.lanes, pool.cold_ms, pool.warm_ms,
      pool.warm_ms > 0.0 ? pool.cold_ms / pool.warm_ms : 0.0);

  std::string json = "{\n  \"bench\": \"tracking\",\n";
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "  \"rounds\": %zu,\n  \"n0\": %.0f,\n  \"q\": %.4f,\n"
                "  \"mode\": \"%s\",\n  \"seed\": %llu,\n"
                "  \"smoke\": %s,\n  \"tracked_beats_raw\": %s,\n"
                "  \"scenarios\": [\n",
                rounds, n0, q,
                cfg.mode == rfid::FrameMode::kExact ? "exact" : "sampled",
                static_cast<unsigned long long>(cfg.seed),
                smoke ? "true" : "false", pass ? "true" : "false");
  json += buf;
  for (std::size_t i = 0; i < records.size(); ++i) {
    append_scenario_json(json, records[i], i + 1 == records.size());
  }
  json += "  ]\n}\n";

  const char* path = "BENCH_tracking.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return 1;
  }
  return pass ? 0 : 1;
}
