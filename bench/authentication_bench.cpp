// Batch-verification and threshold-query benches (beyond the paper):
// cost and detection quality of the access-control primitives built on
// the BFCE substrate.

#include <vector>

#include "bench_common.hpp"
#include "core/authenticate.hpp"
#include "core/threshold.hpp"
#include "rfid/reader.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {});
  bench::PopulationCache pops(cli.seed());

  // 1. Batch verification vs batch size (5% of tags missing).
  util::Table auth({"enrolled", "rounds", "airtime_s", "missing_actual",
                    "missing_found", "unverified", "fp_mean"});
  for (std::size_t n : {5000UL, 20000UL, 50000UL, 100000UL}) {
    const auto& enrolled = pops.get(n, rfid::TagIdDistribution::kT1Uniform);
    const auto gone = n / 20;
    std::vector<rfid::Tag> field_tags(
        enrolled.tags().begin(),
        enrolled.tags().end() - static_cast<long>(gone));
    const rfid::TagPopulation field{std::move(field_tags)};
    util::Xoshiro256ss rng(cli.seed() + n);
    const auto out = core::verify_batch(enrolled, field, core::AuthConfig{},
                                        rfid::Channel{}, rng);
    auth.add_row(
        {util::Table::num(static_cast<std::uint64_t>(n)),
         util::Table::num(static_cast<std::uint64_t>(out.rounds_used)),
         util::Table::num(out.airtime.total_seconds(rfid::TimingModel{}), 2),
         util::Table::num(static_cast<std::uint64_t>(gone)),
         util::Table::num(static_cast<std::uint64_t>(out.absent_count)),
         util::Table::num(static_cast<std::uint64_t>(out.unverified_count)),
         util::Table::num(out.false_presence_mean, 4)});
  }
  bench::emit(cli, "Batch verification: cost & detection vs batch size "
                   "(5% missing)",
              auth);

  // 2. SPRT threshold query: slots vs distance from the threshold.
  util::Table sprt({"n/T", "decisive", "slots", "airtime_s"});
  constexpr double kT = 20000.0;
  for (const double ratio : {0.2, 0.5, 0.8, 0.95, 1.05, 1.25, 2.0, 5.0}) {
    const auto n = static_cast<std::size_t>(kT * ratio);
    const auto& pop = pops.get(n, rfid::TagIdDistribution::kT1Uniform);
    rfid::ReaderContext ctx(pop, cli.seed() + n,
                            rfid::FrameMode::kSampled);
    core::ThresholdQuery q;
    q.threshold = kT;
    const auto ans = core::threshold_query(ctx, q);
    sprt.add_row({util::Table::num(ratio, 2), ans.decisive ? "yes" : "no",
                  util::Table::num(static_cast<std::uint64_t>(ans.slots)),
                  util::Table::num(ans.time_us / 1e6, 3)});
  }
  bench::emit(cli,
              "SPRT threshold query (T=20000, gamma=1.5): adaptive cost",
              sprt);
  std::puts("shape check: verification rounds grow ~linearly in batch "
            "size (sampling keeps per-round load at the target) yet stay "
            "50-100x cheaper than identifying the batch; SPRT slot counts "
            "explode only inside the indifference band and collapse to a "
            "handful far from T.");
  return 0;
}
