// Ablations of BFCE's design choices (DESIGN.md §5/§6 — beyond the
// paper's own figures):
//   1. the rough-phase coefficient c ∈ {0.1 … 0.9} (§IV-C says 0.5);
//   2. hash scheme × persistence realisation (ideal vs the paper's
//      lightweight tag-side schemes);
//   3. number of hash functions k (§IV-B argues for 3);
//   4. channel error sensitivity (the paper assumes a perfect channel).

#include <memory>

#include "bench_common.hpp"
#include "core/bfce.hpp"

using namespace bfce;

namespace {

sim::ExperimentSummary run_with(const rfid::TagPopulation& pop,
                                const core::BfceParams& params,
                                const util::Cli& cli, std::size_t trials,
                                rfid::FrameMode mode,
                                rfid::ChannelModel channel = {}) {
  sim::ExperimentConfig cfg;
  cfg.trials = trials;
  cfg.req = {0.05, 0.05};
  cfg.mode = mode;
  cfg.channel = channel;
  cfg.seed = cli.seed() ^ (params.k * 131ULL) ^
             static_cast<std::uint64_t>(params.c * 1000) ^
             (static_cast<std::uint64_t>(params.hash) << 40) ^
             (static_cast<std::uint64_t>(params.persistence) << 44) ^
             static_cast<std::uint64_t>(channel.false_busy_rate * 1e6);
  const auto records = sim::run_experiment(
      pop, [&params] { return std::make_unique<core::BfceEstimator>(params); },
      cfg);
  return sim::summarize_records(records, 0.05);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials", "n"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 30));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 200000));
  bench::PopulationCache pops(cli.seed());
  const auto& pop = pops.get(n, rfid::TagIdDistribution::kT2ApproxNormal);

  // 1. c sweep: smaller c = safer lower bound but larger p_o (more load
  // in phase 2); c→1 risks n_low > n and a broken Theorem-4 guarantee.
  util::Table c_table({"c", "acc_mean", "acc_max", "violation_rate"});
  for (const double c : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    core::BfceParams prm;
    prm.c = c;
    const auto s =
        run_with(pop, prm, cli, trials, rfid::FrameMode::kSampled);
    c_table.add_row({util::Table::num(c, 1),
                     util::Table::num(s.accuracy.mean, 4),
                     util::Table::num(s.accuracy.max, 4),
                     util::Table::num(s.violation_rate, 3)});
  }
  bench::emit(cli, "Ablation 1: rough lower-bound coefficient c", c_table);

  // 2. tag-side realisations (exact agent mode: RNs matter).
  util::Table r_table({"hash", "persistence", "acc_mean", "acc_max",
                       "violation_rate"});
  const struct {
    rfid::HashScheme h;
    hash::PersistenceMode p;
    const char* hn;
    const char* pn;
  } combos[] = {
      {rfid::HashScheme::kIdeal, hash::PersistenceMode::kIdealBernoulli,
       "ideal", "bernoulli"},
      {rfid::HashScheme::kIdeal, hash::PersistenceMode::kSharedDraw,
       "ideal", "shared-draw"},
      {rfid::HashScheme::kIdeal, hash::PersistenceMode::kRnBits, "ideal",
       "rn-bits"},
      {rfid::HashScheme::kLightweight,
       hash::PersistenceMode::kIdealBernoulli, "lightweight", "bernoulli"},
      {rfid::HashScheme::kLightweight, hash::PersistenceMode::kRnBits,
       "lightweight", "rn-bits"},
  };
  const auto& small_pop = pops.get(50000, rfid::TagIdDistribution::kT2ApproxNormal);
  for (const auto& combo : combos) {
    core::BfceParams prm;
    prm.hash = combo.h;
    prm.persistence = combo.p;
    const auto s =
        run_with(small_pop, prm, cli, trials, rfid::FrameMode::kExact);
    r_table.add_row({combo.hn, combo.pn,
                     util::Table::num(s.accuracy.mean, 4),
                     util::Table::num(s.accuracy.max, 4),
                     util::Table::num(s.violation_rate, 3)});
  }
  bench::emit(cli,
              "Ablation 2: tag-side hash/persistence realisations "
              "(n=50000, exact frames)",
              r_table);

  // 3. k sweep.
  util::Table k_table({"k", "acc_mean", "acc_max", "violation_rate"});
  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 6u}) {
    core::BfceParams prm;
    prm.k = k;
    const auto s =
        run_with(pop, prm, cli, trials, rfid::FrameMode::kSampled);
    k_table.add_row({util::Table::num(static_cast<std::uint64_t>(k)),
                     util::Table::num(s.accuracy.mean, 4),
                     util::Table::num(s.accuracy.max, 4),
                     util::Table::num(s.violation_rate, 3)});
  }
  bench::emit(cli, "Ablation 3: number of hash functions k", k_table);

  // 4. w sweep: the Bloom vector length trades airtime against the
  // scalability ceiling γ_max·w (§IV-B argues for 8192).
  util::Table w_table({"w", "acc_mean", "acc_max", "time_s",
                       "max_cardinality_M"});
  for (const std::uint32_t w : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    core::BfceParams prm;
    prm.w = w;
    prm.rough_prefix = w / 8;
    const auto s =
        run_with(pop, prm, cli, trials, rfid::FrameMode::kSampled);
    rfid::Airtime fixed;
    fixed.reader_bits = 256;
    fixed.intervals = 3;
    fixed.tag_bits = w / 8 + w;
    w_table.add_row(
        {util::Table::num(static_cast<std::uint64_t>(w)),
         util::Table::num(s.accuracy.mean, 4),
         util::Table::num(s.accuracy.max, 4),
         util::Table::num(fixed.total_seconds(rfid::TimingModel{}), 3),
         util::Table::num(
             core::gamma_bounds(3).max * static_cast<double>(w) / 1e6, 1)});
  }
  bench::emit(cli, "Ablation 4: Bloom vector length w (accuracy vs "
                   "airtime vs ceiling)",
              w_table);

  // 5. channel error sensitivity.
  util::Table e_table({"false_busy", "false_idle", "acc_mean", "acc_max"});
  for (const double rate : {0.0, 0.001, 0.005, 0.01, 0.05}) {
    core::BfceParams prm;
    const auto s = run_with(pop, prm, cli, trials, rfid::FrameMode::kSampled,
                            rfid::ChannelModel{rate, rate});
    e_table.add_row({util::Table::num(rate, 3), util::Table::num(rate, 3),
                     util::Table::num(s.accuracy.mean, 4),
                     util::Table::num(s.accuracy.max, 4)});
  }
  bench::emit(cli,
              "Ablation 5: symmetric channel error rates (paper assumes "
              "perfect channel)",
              e_table);

  std::puts("observations to look for: c=0.5 balances safety vs load; all "
            "realisations keep the marginal guarantee (lightweight adds "
            "slot correlation, slightly wider max error); k>=2 suffices "
            "under ideal hashing while k=3 hedges weak randomness; errors "
            "bias the estimate roughly linearly in the error rate.");
  return 0;
}
