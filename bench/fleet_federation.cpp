// Fleet-federation bench: the federation layer at deployment scale.
//
// Sweeps simulated reader fleets (1k and 10k readers by default) over a
// millions-of-tags floor at nominal coverage overlaps {0, 0.25, 0.5}.
// Each cell runs one federated union estimate AND the naive baseline —
// every reader independently estimating its own coverage with plain
// BFCE, summed — through the same EstimationService, then compares both
// against the ground-truth union cardinality. A determinism matrix
// re-runs federated jobs across service worker counts {1, 4, 8} and
// aggregation-tree fanouts {2, 8} and checks the trajectories are
// bit-identical.
//
//   $ fleet_federation [--readers=10000] [--tags=2000000] [--workers=0]
//                      [--seed=...] [--exact] [--csv]
//
// Writes the whole record to BENCH_federation.json. Exit status is
// non-zero unless (a) the overlap-corrected union estimate beats the
// naive summed estimate at every overlap fraction > 0 and (b) the
// determinism matrix is bit-identical across all worker × fanout cells.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "federation/federated_bfce.hpp"
#include "federation/fleet.hpp"
#include "federation/geometry.hpp"
#include "rfid/multireader.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

using namespace bfce;

namespace {

struct CellRecord {
  std::size_t readers = 0;
  double frac_target = 0.0;
  double frac_realised = 0.0;
  std::size_t union_n = 0;
  std::uint32_t schedule_rounds = 0;
  double fed_n_hat = 0.0;
  double fed_err = 0.0;
  double naive_n_hat = 0.0;
  double naive_err = 0.0;
  double correction_g = 0.0;
  double fleet_airtime_s = 0.0;
  std::uint64_t merges = 0;
  std::uint64_t word_ors = 0;
  double wall_s = 0.0;
};

double wall_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One sweep cell: federated job + the naive per-reader job fan-out,
/// both through the same service so the ServiceMetrics federation row
/// and the plain-job counters accumulate side by side.
CellRecord run_cell(const federation::Fleet& fleet, double frac_target,
                    const service::ServiceConfig& scfg, std::uint64_t seed) {
  CellRecord rec;
  rec.readers = fleet.reader_count();
  rec.frac_target = frac_target;
  rec.frac_realised = fleet.profile().overlap_fraction();
  rec.union_n = fleet.union_size();
  rec.schedule_rounds = fleet.schedule_rounds();
  const double union_n = static_cast<double>(rec.union_n);

  const auto t0 = std::chrono::steady_clock::now();
  service::EstimationService svc(scfg);

  service::JobSpec fed_spec;
  fed_spec.estimator = "BFCE-federated";
  fed_spec.seed = seed;
  fed_spec.federation = service::FederationJobSpec{
      &fleet, federation::SessionCorrelation::kIndependent, 8};
  const service::JobId fed_id = svc.submit(fed_spec);

  std::vector<service::JobId> naive_ids;
  naive_ids.reserve(fleet.reader_count());
  for (std::size_t r = 0; r < fleet.reader_count(); ++r) {
    service::JobSpec spec;
    spec.population = &fleet.system().reader_population(r);
    spec.seed = util::derive_seed(seed, r + 1);
    naive_ids.push_back(svc.submit(spec));
  }
  svc.drain();

  const service::JobResult fed = svc.wait(fed_id);
  rec.fed_n_hat = fed.outcome.n_hat;
  rec.fed_err = fed.outcome.relative_error(union_n);
  if (fed.federation.has_value()) {
    rec.correction_g = fed.federation->correction_g;
    rec.fleet_airtime_s = fed.federation->fleet_airtime_s;
    rec.merges = fed.federation->merge.merges;
    rec.word_ors = fed.federation->merge.word_ors;
  }
  for (const service::JobId id : naive_ids) {
    rec.naive_n_hat += svc.wait(id).outcome.n_hat;
  }
  rec.naive_err = std::fabs(rec.naive_n_hat - union_n) / union_n;
  rec.wall_s = wall_since(t0);
  return rec;
}

struct Trajectory {
  double n_hat, ci_low, ci_high, g, airtime_s;
  std::uint64_t fp;

  bool operator==(const Trajectory& o) const {
    return n_hat == o.n_hat && ci_low == o.ci_low && ci_high == o.ci_high &&
           g == o.g && airtime_s == o.airtime_s && fp == o.fp;
  }
};

/// Federated jobs re-run across worker counts and fanouts; any
/// divergence is a determinism bug, not a tuning matter.
bool determinism_matrix(const federation::Fleet& fleet,
                        const service::ServiceConfig& base,
                        std::uint64_t seed) {
  std::vector<std::vector<Trajectory>> runs;
  for (const unsigned workers : {1u, 4u, 8u}) {
    for (const std::uint32_t fanout : {2u, 8u}) {
      service::ServiceConfig scfg = base;
      scfg.workers = workers;
      service::EstimationService svc(scfg);
      std::vector<service::JobId> ids;
      for (std::uint64_t j = 0; j < 3; ++j) {
        service::JobSpec spec;
        spec.seed = util::derive_seed(seed, 0xD0 + j);
        spec.federation = service::FederationJobSpec{
            &fleet, federation::SessionCorrelation::kIndependent, fanout};
        ids.push_back(svc.submit(spec));
      }
      std::vector<Trajectory> traj;
      for (const service::JobId id : ids) {
        const service::JobResult res = svc.wait(id);
        if (res.status != service::JobStatus::kDone ||
            !res.federation.has_value()) {
          return false;
        }
        traj.push_back({res.outcome.n_hat, res.outcome.ci_low,
                        res.outcome.ci_high, res.federation->correction_g,
                        res.airtime_s, res.federation->rng_fingerprint});
      }
      runs.push_back(std::move(traj));
    }
  }
  for (std::size_t c = 1; c < runs.size(); ++c) {
    if (!(runs[c] == runs[0])) {
      std::fprintf(stderr, "determinism matrix: config %zu diverged\n", c);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"readers", "tags", "workers", "seed", "exact", "csv"});
  const auto max_readers =
      static_cast<std::size_t>(cli.get_int("readers", 10000));
  const auto tags = static_cast<std::size_t>(cli.get_int("tags", 2000000));
  const auto workers = static_cast<unsigned>(cli.get_int("workers", 0));

  bench::PopulationCache pops(cli.seed());
  const rfid::TagPopulation& pop =
      pops.get(tags, rfid::TagIdDistribution::kT1Uniform);

  service::ServiceConfig scfg;
  scfg.workers = workers;
  scfg.mode = bench::mode_from(cli);

  std::vector<std::size_t> reader_counts;
  if (max_readers > 1000) reader_counts.push_back(1000);
  reader_counts.push_back(max_readers);
  const double fracs[] = {0.0, 0.25, 0.5};

  // Fleets are built once and shared between the sweep and the
  // determinism matrix; the 1k-reader 0.25-overlap fleet doubles as the
  // matrix target.
  std::vector<CellRecord> cells;
  const federation::Fleet* matrix_fleet = nullptr;
  std::vector<std::unique_ptr<federation::Fleet>> fleets;
  const auto t_total = std::chrono::steady_clock::now();
  for (const std::size_t readers : reader_counts) {
    for (const double frac : fracs) {
      const double radius = federation::grid_radius_for_overlap(
          readers, frac, readers >= 4096 ? 1024 : 2048);
      fleets.push_back(std::make_unique<federation::Fleet>(
          pop, rfid::MultiReaderSystem::grid(readers, radius)));
      const federation::Fleet& fleet = *fleets.back();
      if (matrix_fleet == nullptr && frac > 0.0) matrix_fleet = &fleet;
      std::printf("cell: %zu readers, overlap target %.2f (realised %.3f), "
                  "union %zu...\n",
                  readers, frac, fleet.profile().overlap_fraction(),
                  fleet.union_size());
      std::fflush(stdout);
      cells.push_back(run_cell(
          fleet, frac, scfg,
          util::SeedMixer(cli.seed())
              .absorb(std::uint64_t{readers})
              .absorb(std::uint64_t{static_cast<std::uint64_t>(frac * 100)})
              .value()));
    }
  }

  std::printf("determinism matrix: workers {1,4,8} x fanouts {2,8}...\n");
  std::fflush(stdout);
  const bool deterministic =
      matrix_fleet != nullptr &&
      determinism_matrix(*matrix_fleet, scfg, cli.seed());

  bool union_beats_naive = true;
  for (const CellRecord& c : cells) {
    if (c.frac_target > 0.0 && c.fed_err >= c.naive_err) {
      union_beats_naive = false;
    }
  }
  const double total_wall_s = wall_since(t_total);

  util::Table table({"readers", "overlap", "realised", "union", "rounds",
                     "fed_err", "naive_err", "g", "fleet_s", "wall_s"});
  for (const CellRecord& c : cells) {
    table.add_row({std::to_string(c.readers), util::Table::num(c.frac_target),
                   util::Table::num(c.frac_realised),
                   std::to_string(c.union_n), std::to_string(c.schedule_rounds),
                   util::Table::num(c.fed_err), util::Table::num(c.naive_err),
                   util::Table::num(c.correction_g),
                   util::Table::num(c.fleet_airtime_s),
                   util::Table::num(c.wall_s)});
  }
  bench::emit(cli, "fleet_federation: union estimate vs naive summation",
              table);
  std::printf("union beats naive at every overlap > 0: %s\n",
              union_beats_naive ? "yes" : "NO — BUG");
  std::printf("bit-identical across workers x fanouts: %s\n",
              deterministic ? "yes" : "NO — BUG");

  // ---- BENCH_federation.json ---------------------------------------
  std::string json = "{\n  \"bench\": \"fleet_federation\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"tags\": %zu,\n  \"max_readers\": %zu,\n"
                "  \"workers\": %u,\n  \"mode\": \"%s\",\n"
                "  \"seed\": %llu,\n  \"total_wall_s\": %.3f,\n"
                "  \"union_beats_naive\": %s,\n  \"deterministic\": %s,\n"
                "  \"cells\": [\n",
                tags, max_readers, workers,
                scfg.mode == rfid::FrameMode::kExact ? "exact" : "sampled",
                static_cast<unsigned long long>(cli.seed()), total_wall_s,
                union_beats_naive ? "true" : "false",
                deterministic ? "true" : "false");
  json += buf;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellRecord& c = cells[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"readers\": %zu, \"overlap_target\": %.2f, "
        "\"overlap_realised\": %.4f, \"union\": %zu, "
        "\"schedule_rounds\": %u, \"fed_n_hat\": %.1f, "
        "\"fed_rel_err\": %.6f, \"naive_n_hat\": %.1f, "
        "\"naive_rel_err\": %.6f, \"correction_g\": %.6f, "
        "\"fleet_airtime_s\": %.4f, \"tree_merges\": %llu, "
        "\"word_ors\": %llu, \"wall_s\": %.3f}%s\n",
        c.readers, c.frac_target, c.frac_realised, c.union_n,
        c.schedule_rounds, c.fed_n_hat, c.fed_err, c.naive_n_hat, c.naive_err,
        c.correction_g, c.fleet_airtime_s,
        static_cast<unsigned long long>(c.merges),
        static_cast<unsigned long long>(c.word_ors), c.wall_s,
        i + 1 == cells.size() ? "" : ",");
    json += buf;
  }
  json += "  ]\n}\n";

  const char* path = "BENCH_federation.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return 1;
  }
  return (union_beats_naive && deterministic) ? 0 : 1;
}
