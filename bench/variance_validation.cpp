// Variance validation (beyond the paper's figures): the CLT machinery
// behind Theorem 3 — σ(X)/√w for ρ̄, and the delta-method prediction for
// sd(n̂)/n — against direct Monte-Carlo measurement across the load
// range. This is the quantitative backbone of the p_o search; if these
// columns did not match, neither Fig 7 nor Fig 9 would.

#include <cmath>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "math/stats.hpp"
#include "rfid/frame.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"frames", "n"});
  const auto frames = static_cast<int>(cli.get_int("frames", 300));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 100000));
  constexpr std::uint32_t kW = 8192;
  constexpr std::uint32_t kK = 3;

  util::Table table({"lambda", "p_n", "sd_rho_meas", "sd_rho_pred",
                     "rel_sd_nhat_meas", "rel_sd_nhat_pred"});
  util::Xoshiro256ss rng(cli.seed());
  const rfid::Channel ch;

  for (const double lambda_target : {0.25, 0.5, 1.0, 1.594, 2.5, 4.0}) {
    const auto p_n = static_cast<std::uint32_t>(std::lround(
        lambda_target * kW * 1024.0 / (kK * static_cast<double>(n))));
    if (p_n == 0 || p_n > 1023) continue;
    const double p = static_cast<double>(p_n) / 1024.0;
    math::RunningStats rho_stats;
    math::RunningStats nhat_stats;
    for (int f = 0; f < frames; ++f) {
      rfid::BloomFrameConfig cfg;
      cfg.set_p_numerator(p_n);
      cfg.seeds = {rng(), rng(), rng()};
      const auto busy = rfid::sampled_bloom_frame(n, cfg, ch, rng);
      const double rho =
          1.0 - static_cast<double>(busy.count_ones()) / kW;
      rho_stats.add(rho);
      if (rho > 0.0 && rho < 1.0) {
        nhat_stats.add(core::estimate_from_rho(rho, kW, kK, p));
      }
    }
    const double lambda =
        core::slot_load(static_cast<double>(n), kW, kK, p);
    table.add_row(
        {util::Table::num(lambda, 3),
         util::Table::num(static_cast<std::uint64_t>(p_n)),
         util::Table::num(rho_stats.stddev(), 6),
         util::Table::num(core::sigma_x(lambda) / std::sqrt(8192.0), 6),
         util::Table::num(nhat_stats.stddev() / static_cast<double>(n), 5),
         util::Table::num(
             core::predicted_relative_sd(static_cast<double>(n), kW, kK, p),
             5)});
  }
  bench::emit(cli,
              "CLT validation: measured vs predicted deviations "
              "(n=" + std::to_string(n) + ", " +
                  std::to_string(frames) + " frames/point)",
              table);
  std::puts("shape check: measured and predicted columns agree within "
            "Monte-Carlo noise at every load; relative sd of n_hat is "
            "minimised near lambda = 1.59 (the classic occupancy "
            "optimum that ZOE and SRC tune for).");
  return 0;
}
