// Fig 9 — accuracy comparison of BFCE vs ZOE vs SRC on the T2
// distribution:
//   (a) vs n, (ε, δ) = (0.05, 0.05);
//   (b) vs ε, n = 500000, δ = 0.05;
//   (c) vs δ, n = 500000, ε = 0.05.
//
// Paper shape: all three usually meet the requirement, but ZOE and SRC
// show occasional violations (their accuracy depends on the luck of the
// rough-estimation phase); BFCE meets it in every run.
//
// Flags: [--trials=15] [--exact] [--shards=N] — --shards routes every
// trial through the sharded engine pipeline (results are a pure
// function of the per-point seed for any shard count).

#include <iostream>

#include "comparison_common.hpp"
#include "core/monitor.hpp"

using namespace bfce;

namespace {

void sweep(const char* title, bench::PopulationCache& pops,
           const util::Cli& cli, std::size_t trials,
           const std::vector<std::tuple<std::size_t, double, double>>& axis,
           const char* axis_name) {
  util::Table table({axis_name, "protocol", "acc_mean", "acc_max",
                     "violation_rate"});
  for (const auto& [n, eps, delta] : axis) {
    for (const std::string& proto : bench::comparison_protocols()) {
      const auto s =
          bench::comparison_point(pops, proto, n, eps, delta, cli, trials);
      std::string x;
      if (std::string(axis_name) == "n") {
        x = util::Table::num(static_cast<std::uint64_t>(n));
      } else if (std::string(axis_name) == "eps") {
        x = util::Table::num(eps, 2);
      } else {
        x = util::Table::num(delta, 2);
      }
      table.add_row({x, proto, util::Table::num(s.accuracy.mean, 4),
                     util::Table::num(s.accuracy.max, 4),
                     util::Table::num(s.violation_rate, 3)});
    }
  }
  bench::emit(cli, title, table);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials", "exact", "shards"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 15));
  bench::PopulationCache pops(cli.seed());

  std::vector<std::tuple<std::size_t, double, double>> axis_n;
  for (const std::size_t n : bench::comparison_ns()) {
    axis_n.emplace_back(n, 0.05, 0.05);
  }
  sweep("Fig 9(a): accuracy vs n on T2, (eps,delta)=(0.05,0.05)", pops, cli,
        trials, axis_n, "n");

  std::vector<std::tuple<std::size_t, double, double>> axis_eps;
  for (const double eps : bench::comparison_eps()) {
    axis_eps.emplace_back(500000, eps, 0.05);
  }
  sweep("Fig 9(b): accuracy vs eps on T2, n=500000, delta=0.05", pops, cli,
        trials, axis_eps, "eps");

  std::vector<std::tuple<std::size_t, double, double>> axis_delta;
  for (const double delta : bench::comparison_deltas()) {
    axis_delta.emplace_back(500000, 0.05, delta);
  }
  sweep("Fig 9(c): accuracy vs delta on T2, n=500000, eps=0.05", pops, cli,
        trials, axis_delta, "delta");

  std::puts("shape check (paper): BFCE violation_rate <= delta everywhere "
            "with mean accuracy well under eps; ZOE/SRC mostly comply but "
            "show occasional acc_max spikes driven by bad rough estimates "
            "(the paper's n=50000 SRC and delta=0.3 ZOE exceptions).");
  std::cout << "\n== frame-engine counters (all sweeps) ==\n"
            << core::render_engine_counters(bench::comparison_counters());
  return 0;
}
