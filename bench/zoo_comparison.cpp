// Extended comparison (beyond the paper): every estimator in the library
// on one scenario — accuracy, execution time under the C1G2 model, and
// communication breakdown. This is the "which estimator should I use"
// table a library user wants.

#include "bench_common.hpp"
#include "estimators/registry.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials", "n", "exact"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 15));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 100000));
  bench::PopulationCache pops(cli.seed());
  const auto& pop = pops.get(n, rfid::TagIdDistribution::kT2ApproxNormal);

  util::Table table({"protocol", "acc_mean", "acc_max", "time_mean_s",
                     "time_max_s", "violation_rate"});
  for (const std::string& name : estimators::estimator_names()) {
    sim::ExperimentConfig cfg;
    cfg.trials = trials;
    cfg.req = {0.05, 0.05};
    cfg.mode = bench::mode_from(cli);
    cfg.seed = cli.seed() ^ std::hash<std::string>{}(name);
    const auto records = sim::run_experiment(
        pop, [&name] { return estimators::make_estimator(name); }, cfg);
    const auto s = sim::summarize_records(records, 0.05);
    table.add_row({name, util::Table::num(s.accuracy.mean, 4),
                   util::Table::num(s.accuracy.max, 4),
                   util::Table::num(s.time_s.mean, 4),
                   util::Table::num(s.time_s.max, 4),
                   util::Table::num(s.violation_rate, 3)});
  }
  bench::emit(cli,
              "Estimator zoo on T2, n=" + std::to_string(n) +
                  ", (eps,delta)=(0.05,0.05)",
              table);
  std::puts("notes: LOF and PET are magnitude estimators (no (eps,delta) "
            "contract); FNEB buys accuracy with thousands of rounds; BFCE "
            "is the only one whose time is constant by construction.");
  return 0;
}
