// Fig 10 — overall execution-time comparison of BFCE vs ZOE vs SRC on
// the T2 distribution, same three sweeps as Fig 9.
//
// Paper shape: ZOE costs seconds (up to ~18 s worst case, dominated by
// per-slot 32-bit seed broadcasts and rough-phase restarts); SRC sits in
// between with visible variance; BFCE is flat at < 0.19 s (plus a few ms
// of probe cost our ledger includes). Headline averages: BFCE ~30× faster
// than ZOE, ~2× faster than SRC.
//
// Flags: [--trials=15] [--exact] [--shards=N] — --shards routes every
// trial through the sharded engine pipeline (reported protocol times are
// simulated airtime, so only host wall-clock changes).

#include <iostream>

#include "comparison_common.hpp"
#include "core/monitor.hpp"
#include "math/stats.hpp"

using namespace bfce;

namespace {

struct SpeedupAccumulator {
  math::RunningStats zoe_ratio;
  math::RunningStats src_ratio;
  // The paper's headline averages are over the primary (n) sweep at the
  // default requirement; the ε/δ sweeps include points where everything
  // is cheap and dilute the ratio.
  math::RunningStats zoe_ratio_nsweep;
  math::RunningStats src_ratio_nsweep;
  bool in_n_sweep = false;
};

void sweep(const char* title, bench::PopulationCache& pops,
           const util::Cli& cli, std::size_t trials,
           const std::vector<std::tuple<std::size_t, double, double>>& axis,
           const char* axis_name, SpeedupAccumulator& acc) {
  util::Table table({axis_name, "protocol", "time_mean_s", "time_min_s",
                     "time_max_s"});
  for (const auto& [n, eps, delta] : axis) {
    double bfce_mean = 0.0;
    for (const std::string& proto : bench::comparison_protocols()) {
      const auto s =
          bench::comparison_point(pops, proto, n, eps, delta, cli, trials);
      if (proto == "BFCE") bfce_mean = s.time_s.mean;
      if (proto == "ZOE") {
        acc.zoe_ratio.add(s.time_s.mean / bfce_mean);
        if (acc.in_n_sweep) acc.zoe_ratio_nsweep.add(s.time_s.mean / bfce_mean);
      }
      if (proto == "SRC") {
        acc.src_ratio.add(s.time_s.mean / bfce_mean);
        if (acc.in_n_sweep) acc.src_ratio_nsweep.add(s.time_s.mean / bfce_mean);
      }
      std::string x;
      if (std::string(axis_name) == "n") {
        x = util::Table::num(static_cast<std::uint64_t>(n));
      } else if (std::string(axis_name) == "eps") {
        x = util::Table::num(eps, 2);
      } else {
        x = util::Table::num(delta, 2);
      }
      table.add_row({x, proto, util::Table::num(s.time_s.mean, 4),
                     util::Table::num(s.time_s.min, 4),
                     util::Table::num(s.time_s.max, 4)});
    }
  }
  bench::emit(cli, title, table);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials", "exact", "shards"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 15));
  bench::PopulationCache pops(cli.seed());
  SpeedupAccumulator acc;

  std::vector<std::tuple<std::size_t, double, double>> axis_n;
  for (const std::size_t n : bench::comparison_ns()) {
    axis_n.emplace_back(n, 0.05, 0.05);
  }
  acc.in_n_sweep = true;
  sweep("Fig 10(a): execution time vs n on T2, (eps,delta)=(0.05,0.05)",
        pops, cli, trials, axis_n, "n", acc);
  acc.in_n_sweep = false;

  std::vector<std::tuple<std::size_t, double, double>> axis_eps;
  for (const double eps : bench::comparison_eps()) {
    axis_eps.emplace_back(500000, eps, 0.05);
  }
  sweep("Fig 10(b): execution time vs eps on T2, n=500000, delta=0.05",
        pops, cli, trials, axis_eps, "eps", acc);

  std::vector<std::tuple<std::size_t, double, double>> axis_delta;
  for (const double delta : bench::comparison_deltas()) {
    axis_delta.emplace_back(500000, 0.05, delta);
  }
  sweep("Fig 10(c): execution time vs delta on T2, n=500000, eps=0.05",
        pops, cli, trials, axis_delta, "delta", acc);

  util::Table headline(
      {"ratio", "avg_n_sweep", "avg_all_points", "paper"});
  headline.add_row({"ZOE time / BFCE time",
                    util::Table::num(acc.zoe_ratio_nsweep.mean(), 1),
                    util::Table::num(acc.zoe_ratio.mean(), 1), "~30x"});
  headline.add_row({"SRC time / BFCE time",
                    util::Table::num(acc.src_ratio_nsweep.mean(), 1),
                    util::Table::num(acc.src_ratio.mean(), 1), "~2x"});
  bench::emit(cli,
              "Fig 10 headline: average speedups (primary n sweep at the "
              "default requirement, and all sweep points)",
              headline);
  std::puts("shape check (paper): BFCE flat (~0.19-0.22 s incl. probes) at "
            "every point; ZOE seconds (worst cases from restarts); SRC "
            "between, shrinking as eps/delta loosen.");
  std::cout << "\n== frame-engine counters (all sweeps) ==\n"
            << core::render_engine_counters(bench::comparison_counters());
  return 0;
}
