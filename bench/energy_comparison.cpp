// Tag-side energy comparison (beyond the paper's figures; connects to
// the MLE baseline's energy-efficiency motivation): per-tag energy of
// every estimator for a population of active tags.
//
// Listening dominates for broadcast-heavy protocols: every tag hears
// every reader bit, so ZOE's m×32-bit seed stream costs each tag far
// more energy than its own replies.

#include "bench_common.hpp"
#include "estimators/registry.hpp"
#include "rfid/energy.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 100000));
  bench::PopulationCache pops(cli.seed());
  const auto& pop = pops.get(n, rfid::TagIdDistribution::kT2ApproxNormal);
  const rfid::EnergyModel em;

  util::Table table({"protocol", "reader_bits", "tag_tx_bits",
                     "listen_uj_per_tag", "tx_uj_per_tag",
                     "total_uj_per_tag"});
  for (const std::string& name : estimators::estimator_names()) {
    const auto est = estimators::make_estimator(name);
    rfid::ReaderContext ctx(pop, cli.seed() + 5, rfid::FrameMode::kSampled);
    const auto out = est->estimate(ctx, {0.05, 0.05});
    const double listen = static_cast<double>(out.airtime.reader_bits) *
                          em.tag_rx_uj_per_bit;
    const double tx = static_cast<double>(out.airtime.tag_tx_bits) *
                      em.tag_tx_uj_per_bit / static_cast<double>(n);
    table.add_row(
        {name, util::Table::num(out.airtime.reader_bits),
         util::Table::num(out.airtime.tag_tx_bits),
         util::Table::num(listen, 2), util::Table::num(tx, 4),
         util::Table::num(em.per_tag_uj(out.airtime, n), 2)});
  }
  bench::emit(cli,
              "Per-tag energy (active tags), n=" + std::to_string(n) +
                  ", (eps,delta)=(0.05,0.05)",
              table);
  std::puts("shape check: listen energy tracks reader_bits — ZOE's seed "
            "broadcasts dwarf everything; BFCE's 2 broadcasts + 9216 "
            "bit-slots make it among the cheapest per tag.");
  return 0;
}
