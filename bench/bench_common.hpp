#pragma once
// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper: it runs the
// experiment, prints the figure's series as an aligned table (or CSV with
// --csv), and finishes with a short "paper vs measured" note so the
// output is self-describing. All binaries accept --trials, --seed,
// --csv and --exact (agent-level frames instead of the sampled law).

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "rfid/population.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace bfce::bench {

/// Caches populations across sweep points — building 5M tags once, not
/// once per estimator.
class PopulationCache {
 public:
  explicit PopulationCache(std::uint64_t seed) : seed_(seed) {}

  const rfid::TagPopulation& get(std::size_t n, rfid::TagIdDistribution d) {
    const auto key = std::make_pair(n, d);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, rfid::make_population(
                                 n, d, seed_ ^ (0x9E37ULL * n) ^
                                           static_cast<std::uint64_t>(d)))
               .first;
    }
    return it->second;
  }

 private:
  std::uint64_t seed_;
  std::map<std::pair<std::size_t, rfid::TagIdDistribution>,
           rfid::TagPopulation>
      cache_;
};

/// Prints `table` as text or CSV per the CLI flag, preceded by a title.
inline void emit(const util::Cli& cli, const std::string& title,
                 const util::Table& table) {
  if (cli.csv()) {
    std::cout << "# " << title << "\n";
    table.print_csv(std::cout);
  } else {
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
  }
  std::cout << "\n";
}

/// Frame mode from the --exact flag.
inline rfid::FrameMode mode_from(const util::Cli& cli) {
  return cli.has("exact") ? rfid::FrameMode::kExact
                          : rfid::FrameMode::kSampled;
}

}  // namespace bfce::bench
