#pragma once
// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper: it runs the
// experiment, prints the figure's series as an aligned table (or CSV with
// --csv), and finishes with a short "paper vs measured" note so the
// output is self-describing. All binaries accept --trials, --seed,
// --csv and --exact (agent-level frames instead of the sampled law).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "rfid/population.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/executor.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace bfce::bench {

/// Caches populations across sweep points — building 5M tags once, not
/// once per estimator.
class PopulationCache {
 public:
  explicit PopulationCache(std::uint64_t seed) : seed_(seed) {}

  const rfid::TagPopulation& get(std::size_t n, rfid::TagIdDistribution d) {
    const auto key = std::make_pair(n, d);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, rfid::make_population(
                                 n, d, seed_ ^ (0x9E37ULL * n) ^
                                           static_cast<std::uint64_t>(d)))
               .first;
    }
    return it->second;
  }

 private:
  std::uint64_t seed_;
  std::map<std::pair<std::size_t, rfid::TagIdDistribution>,
           rfid::TagPopulation>
      cache_;
};

/// Prints `table` as text or CSV per the CLI flag, preceded by a title.
inline void emit(const util::Cli& cli, const std::string& title,
                 const util::Table& table) {
  if (cli.csv()) {
    std::cout << "# " << title << "\n";
    table.print_csv(std::cout);
  } else {
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
  }
  std::cout << "\n";
}

/// Frame mode from the --exact flag.
inline rfid::FrameMode mode_from(const util::Cli& cli) {
  return cli.has("exact") ? rfid::FrameMode::kExact
                          : rfid::FrameMode::kSampled;
}

/// Dispatch-overhead probe: what one parallel_for fan-out costs when the
/// persistent pool has to respawn its workers (cold — the state after
/// Executor::shutdown() or process start) versus when they are parked
/// and waiting (warm — every dispatch after the first).
struct PoolLatency {
  unsigned lanes = 0;
  double cold_ms = 0.0;  ///< median first-dispatch-after-shutdown
  double warm_ms = 0.0;  ///< median dispatch onto parked workers
};

/// Two explicit lanes by default: on a single-core host the default
/// thread count is 1 and parallel_for runs inline without ever touching
/// the pool, so the probe would measure nothing.
inline PoolLatency measure_pool_latency(unsigned lanes = 2) {
  using clock = std::chrono::steady_clock;
  PoolLatency out;
  out.lanes = lanes;
  std::atomic<std::size_t> sink{0};
  const auto dispatch_once = [&] {
    util::parallel_for(
        0, 64,
        [&](std::size_t i) {
          sink.fetch_add(i + 1, std::memory_order_relaxed);
        },
        lanes);
  };
  const auto elapsed_ms = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0)
        .count();
  };
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  // Cold: every cycle tears the pool down first, so the timed dispatch
  // pays the full worker-respawn path the old per-call fork/join
  // parallel_for paid on every invocation.
  std::vector<double> cold;
  for (int r = 0; r < 9; ++r) {
    util::Executor::instance().shutdown();
    const auto t0 = clock::now();
    dispatch_once();
    cold.push_back(elapsed_ms(t0));
  }
  // Warm: the pool survives between dispatches — the last cold cycle
  // left it populated, so these measure the parked-worker wake path.
  std::vector<double> warm;
  for (int r = 0; r < 65; ++r) {
    const auto t0 = clock::now();
    dispatch_once();
    warm.push_back(elapsed_ms(t0));
  }
  out.cold_ms = median(cold);
  out.warm_ms = median(warm);
  return out;
}

}  // namespace bfce::bench
