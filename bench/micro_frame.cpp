// Micro-benchmarks (google-benchmark): frame-executor throughput — the
// simulator's hot path. Shows the exact/sampled cost gap that motivates
// the two-mode design (DESIGN.md §5), and the legacy-vs-FrameEngine gap
// that motivates the batched blocked path.
//
// Three entry points:
//   * default — the usual google-benchmark driver (filters, repetitions,
//     --benchmark_* flags all work);
//   * `--baseline` — a self-timed comparison at n ∈ {1e4, 1e5, 1e6},
//     written as machine-readable JSON to BENCH_frame.json (and echoed
//     to stdout): the 16-frame exact Bloom batch through the pre-engine
//     executor / execute_batch / the sharded walk / the adaptive kAuto
//     policy, the same batch in sampled mode (legacy executors vs the
//     batched sampler vs kAuto), and a 16-frame exact ALOHA batch
//     (sequential vs sharded vs kAuto). The headline `sampled_speedup` /
//     `aloha_speedup` columns compare sequential against kAUTO — the
//     policy's "never a pessimization" guarantee means they must stay
//     ≥ 1; the raw sharded ratios keep their own *_sharded_speedup
//     columns;
//   * `--calibrate` — measures every coefficient of the adaptive
//     planner's cost model on this host and prints them as the
//     "key value" lines rfid/exec_plan.cpp commits (and BFCE_COST_MODEL
//     overrides consume). See docs/TOOLING.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string_view>
#include <vector>

#include "hash/slot_hash.hpp"
#include "rfid/frame.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/population.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace {

using namespace bfce;

constexpr std::size_t kBatchFrames = 16;

// The PRE-engine Bloom executor, verbatim (per-(tag, j) hasher
// construction, one Bernoulli draw per hash): the "legacy" side of the
// batch comparison. The free run_bloom_frame is nowadays a wrapper over
// the engine and already benefits from its hoisted premixing, so
// benchmarking it would understate what the engine replaced.
util::BitVector legacy_run_bloom_frame(const rfid::TagPopulation& tags,
                                       const rfid::BloomFrameConfig& cfg,
                                       const rfid::Channel& channel,
                                       util::Xoshiro256ss& rng) {
  std::vector<std::uint32_t> counts(cfg.w, 0);
  for (const rfid::Tag& tag : tags.tags()) {
    bool shared_respond = true;
    if (cfg.persistence == hash::PersistenceMode::kSharedDraw) {
      shared_respond = rng.bernoulli(cfg.p);
      if (!shared_respond) continue;
    }
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      std::uint32_t slot;
      if (cfg.hash == rfid::HashScheme::kIdeal) {
        slot = hash::IdealSlotHash(cfg.seeds[j]).slot(tag.id, cfg.w);
      } else {
        slot = hash::LightweightSlotHash(
                   static_cast<std::uint32_t>(cfg.seeds[j]))
                   .slot(tag.rn, cfg.w);
      }
      bool respond;
      switch (cfg.persistence) {
        case hash::PersistenceMode::kIdealBernoulli:
          respond = rng.bernoulli(cfg.p);
          break;
        case hash::PersistenceMode::kSharedDraw:
          respond = shared_respond;
          break;
        case hash::PersistenceMode::kRnBits:
          respond = hash::rn_bits_respond(
              tag.rn, slot, static_cast<std::uint32_t>(cfg.seeds[j]),
              cfg.p_n);
          break;
        default:
          respond = false;
      }
      if (respond) ++counts[slot];
    }
  }
  util::BitVector busy(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (rfid::is_busy(channel.observe(counts[i], rng))) busy.set(i);
  }
  return busy;
}

const rfid::TagPopulation& pop_of(std::size_t n) {
  static std::map<std::size_t, rfid::TagPopulation> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache
             .emplace(n, rfid::make_population(
                             n, rfid::TagIdDistribution::kT1Uniform, n))
             .first;
  }
  return it->second;
}

rfid::BloomFrameConfig bloom_cfg() {
  rfid::BloomFrameConfig cfg;
  cfg.set_p_numerator(64);
  cfg.seeds = {1, 2, 3};
  return cfg;
}

/// The 16-frame Bloom batch of the acceptance benchmark: same (w, k, p)
/// at 16 distinct seed triples, as a probe sequence would broadcast.
std::vector<rfid::FrameRequest> bloom_batch() {
  std::vector<rfid::FrameRequest> batch;
  batch.reserve(kBatchFrames);
  for (std::size_t i = 0; i < kBatchFrames; ++i) {
    rfid::BloomFrameConfig cfg = bloom_cfg();
    cfg.seeds = {3 * i + 1, 3 * i + 2, 3 * i + 3};
    batch.push_back(rfid::FrameRequest::bloom(cfg));
  }
  return batch;
}

void BM_BloomFrameExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(1);
  const rfid::Channel ch;
  const auto cfg = bloom_cfg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::run_bloom_frame(pop, cfg, ch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomFrameExact)->Arg(10000)->Arg(100000);

void BM_BloomFrameSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(2);
  const rfid::Channel ch;
  const auto cfg = bloom_cfg();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::sampled_bloom_frame(n, cfg, ch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomFrameSampled)->Arg(10000)->Arg(100000)->Arg(1000000);

// Legacy side of the acceptance comparison: 16 exact Bloom frames run
// one by one through the pre-engine executor.
void BM_BloomBatch16Legacy(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(7);
  const rfid::Channel ch;
  const auto batch = bloom_batch();
  for (auto _ : state) {
    for (const rfid::FrameRequest& req : batch) {
      benchmark::DoNotOptimize(legacy_run_bloom_frame(
          pop, std::get<rfid::BloomFrameConfig>(req.config), ch, rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(kBatchFrames));
}
BENCHMARK(BM_BloomBatch16Legacy)->Arg(10000)->Arg(100000);

// Engine side: the same 16 frames through execute_batch's blocked
// population walk (persistence decided before hashing, packed Bernoulli,
// scratch reuse).
void BM_BloomBatch16Engine(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(7);
  rfid::FrameEngine engine(pop, rfid::Channel{}, rfid::FrameMode::kExact);
  const auto batch = bloom_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.execute_batch(batch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(kBatchFrames));
}
BENCHMARK(BM_BloomBatch16Engine)->Arg(10000)->Arg(100000)->Arg(1000000);

// Sharded side: the same 16 frames through the ExecutionPolicy-sharded
// walk (counter-addressed persistence, word-packed busy synthesis, the
// packed AVX-512 decision kernel where the CPU has one).
void BM_BloomBatch16Sharded(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(7);
  rfid::FrameEngine engine(pop, rfid::Channel{}, rfid::FrameMode::kExact,
                           rfid::ExecutionPolicy::sharded());
  const auto batch = bloom_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.execute_batch(batch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(kBatchFrames));
}
BENCHMARK(BM_BloomBatch16Sharded)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SingleSlotExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(3);
  const rfid::Channel ch;
  const double q = 1.594 / static_cast<double>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::run_single_slot(pop, q, ++seed, ch, rng));
  }
}
BENCHMARK(BM_SingleSlotExact)->Arg(10000)->Arg(100000);

void BM_SingleSlotSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(4);
  const rfid::Channel ch;
  const auto n = static_cast<std::size_t>(state.range(0));
  const double q = 1.594 / static_cast<double>(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::sampled_single_slot(n, q, ch, rng));
  }
}
BENCHMARK(BM_SingleSlotSampled)->Arg(100000)->Arg(10000000);

void BM_LotteryFrameExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(5);
  const rfid::Channel ch;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rfid::run_lottery_frame(pop, 32, ++seed, ch, rng));
  }
}
BENCHMARK(BM_LotteryFrameExact)->Arg(10000)->Arg(100000);

void BM_AlohaFrameSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(6);
  const rfid::Channel ch;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rfid::sampled_aloha_frame(n, 1024, 1.594 * 1024 / static_cast<double>(n), ch, rng));
  }
}
BENCHMARK(BM_AlohaFrameSampled)->Arg(100000)->Arg(1000000);

// ---------------------------------------------------------------------
// --baseline: the self-timed acceptance comparison → BENCH_frame.json.

/// Best-of-reps seconds for one run of `body`; repeats until at least
/// `kMinReps` runs and `kMinTotalS` of accumulated time.
template <typename F>
double best_seconds(F&& body) {
  constexpr int kMinReps = 3;
  constexpr double kMinTotalS = 0.2;
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < kMinReps || total < kMinTotalS; ++rep) {
    const auto t0 = clock::now();
    body();
    const auto t1 = clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    best = std::min(best, s);
    total += s;
  }
  return best;
}

/// Best-of-reps seconds for the two policies of one "auto never loses"
/// pair, measured on ONE engine instance with the policies alternating
/// rep by rep. Separate instances differ by several percent from
/// allocation placement alone, and at n = 1e6 a batch runs ~30 ms, so
/// sequential back-to-back stages also pick up clock/load drift — both
/// effects are larger than the planning overhead this ratio gates.
struct PairSeconds {
  double first, second;
};
PairSeconds paired_seconds(rfid::FrameEngine& engine,
                           const std::vector<rfid::FrameRequest>& batch,
                           rfid::ExecutionPolicy first_policy,
                           rfid::ExecutionPolicy second_policy) {
  constexpr int kMinReps = 51;
  constexpr double kMinTotalS = 0.5;
  using clock = std::chrono::steady_clock;
  double total = 0.0;
  util::Xoshiro256ss rng_first(7);
  util::Xoshiro256ss rng_second(7);
  const auto timed = [&](const rfid::ExecutionPolicy& policy,
                         util::Xoshiro256ss& rng) {
    engine.set_policy(policy);
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(engine.execute_batch(batch, rng));
    const auto t1 = clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    total += s;
    return s;
  };
  // One untimed warm-up of each policy (page faults, scratch growth).
  timed(first_policy, rng_first);
  timed(second_policy, rng_second);
  total = 0.0;
  // The pair ratio gates "kAuto never loses", so the statistic must
  // survive a noisy shared host: each rep times the two policies
  // back-to-back (drift within a rep hits both sides), the rep's ratio
  // is drift-free, and the MEDIAN over reps discards reps a load spike
  // landed in. Best-of and mean-of both drift apart by several percent
  // here even when the two policies execute identical code.
  std::vector<double> firsts, ratios;
  for (int rep = 0; rep < kMinReps || total < kMinTotalS; ++rep) {
    double s_first, s_second;
    if ((rep & 1) == 0) {  // alternate the leader: symmetric cache handoff
      s_first = timed(first_policy, rng_first);
      s_second = timed(second_policy, rng_second);
    } else {
      s_second = timed(second_policy, rng_second);
      s_first = timed(first_policy, rng_first);
    }
    firsts.push_back(s_first);
    ratios.push_back(s_first / s_second);
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v.size() % 2 == 1 ? v[v.size() / 2]
                             : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
  };
  const double first_s = median(firsts);
  return {first_s, first_s / median(ratios)};
}

/// 16 exact ALOHA frames (f = 1024, p = 1) at distinct seeds — the
/// non-Bloom probe of the sharded plan/render/reduce walk. p = 1 draws
/// no tag-side RNG, so the sharded result is bit-identical to the
/// sequential one.
std::vector<rfid::FrameRequest> aloha_batch() {
  std::vector<rfid::FrameRequest> batch;
  batch.reserve(kBatchFrames);
  for (std::size_t i = 0; i < kBatchFrames; ++i) {
    batch.push_back(rfid::FrameRequest::aloha(1024, 1.0, 100 + i));
  }
  return batch;
}

int run_baseline() {
  const std::vector<std::size_t> ns = {10000, 100000, 1000000};
  const auto batch = bloom_batch();
  const auto exact_aloha = aloha_batch();
  const auto cfg = bloom_cfg();

  std::string json;
  char buf[2048];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"micro_frame\",\n"
                "  \"batch_frames\": %zu,\n"
                "  \"frame\": {\"w\": %u, \"k\": %u, \"p\": %.6f},\n"
                "  \"points\": [",
                kBatchFrames, cfg.w, cfg.k, cfg.p);
  json += buf;

  std::printf("16-frame exact Bloom batch, pre-engine executor vs "
              "FrameEngine::execute_batch vs the sharded walk;\n"
              "plus the same batch in sampled mode (batched sampler) and "
              "a 16-frame exact ALOHA batch (f=1024, p=1)\n");
  std::printf("%10s %15s %15s %15s %8s %8s %8s %15s %8s %15s %8s\n", "n",
              "legacy_tags/s", "engine_tags/s", "sharded_tags/s", "eng_x",
              "shard_x", "auto_x", "sampled_tags/s", "samp_x",
              "aloha_tags/s", "aloha_x");

  bool first = true;
  for (const std::size_t n : ns) {
    const auto& pop = pop_of(n);
    const rfid::Channel ch;

    util::Xoshiro256ss legacy_rng(7);
    const double legacy_s = best_seconds([&] {
      for (const rfid::FrameRequest& req : batch) {
        benchmark::DoNotOptimize(legacy_run_bloom_frame(
            pop, std::get<rfid::BloomFrameConfig>(req.config), ch,
            legacy_rng));
      }
    });

    // Sequential and kAuto are timed as an interleaved pair on one
    // instance (see paired_seconds); the raw sharded walk keeps its own
    // instance and stage, as before.
    rfid::FrameEngine engine(pop, ch, rfid::FrameMode::kExact);
    const PairSeconds bloom_pair = paired_seconds(
        engine, batch, rfid::ExecutionPolicy::sequential(),
        rfid::ExecutionPolicy::automatic());
    const double engine_s = bloom_pair.first;
    const double bloom_auto_s = bloom_pair.second;

    rfid::FrameEngine sharded(pop, ch, rfid::FrameMode::kExact,
                              rfid::ExecutionPolicy::sharded());
    util::Xoshiro256ss sharded_rng(7);
    const double sharded_s = best_seconds([&] {
      benchmark::DoNotOptimize(sharded.execute_batch(batch, sharded_rng));
    });

    // Sampled mode: the same 16-frame Bloom batch as aggregate response
    // draws — legacy per-frame executors vs the batched sampler vs kAuto.
    rfid::FrameEngine sampled(n, ch);
    const PairSeconds sampled_pair = paired_seconds(
        sampled, batch, rfid::ExecutionPolicy::sequential(),
        rfid::ExecutionPolicy::automatic());
    const double sampled_s = sampled_pair.first;
    const double sampled_auto_s = sampled_pair.second;

    rfid::FrameEngine sampled_shd(n, ch);
    sampled_shd.set_policy(rfid::ExecutionPolicy::sharded());
    util::Xoshiro256ss sampled_shd_rng(7);
    const double sampled_sharded_s = best_seconds([&] {
      benchmark::DoNotOptimize(
          sampled_shd.execute_batch(batch, sampled_shd_rng));
    });

    // Exact ALOHA: sequential per-frame walk vs the sharded walk vs
    // kAuto (on few-core hosts the planner must keep this sequential —
    // the two-plane tile only pays for itself across real shards).
    rfid::FrameEngine aloha_eng(pop, ch, rfid::FrameMode::kExact);
    const PairSeconds aloha_pair = paired_seconds(
        aloha_eng, exact_aloha, rfid::ExecutionPolicy::sequential(),
        rfid::ExecutionPolicy::automatic());
    const double aloha_s = aloha_pair.first;
    const double aloha_auto_s = aloha_pair.second;

    rfid::FrameEngine aloha_shd(pop, ch, rfid::FrameMode::kExact,
                                rfid::ExecutionPolicy::sharded());
    util::Xoshiro256ss aloha_shd_rng(7);
    const double aloha_sharded_s = best_seconds([&] {
      benchmark::DoNotOptimize(
          aloha_shd.execute_batch(exact_aloha, aloha_shd_rng));
    });

    const double tags = static_cast<double>(n * kBatchFrames);
    const double legacy_tps = tags / legacy_s;
    const double engine_tps = tags / engine_s;
    const double sharded_tps = tags / sharded_s;
    const double bloom_auto_tps = tags / bloom_auto_s;
    const double sampled_tps = tags / sampled_s;
    const double sampled_sharded_tps = tags / sampled_sharded_s;
    const double sampled_auto_tps = tags / sampled_auto_s;
    const double aloha_tps = tags / aloha_s;
    const double aloha_sharded_tps = tags / aloha_sharded_s;
    const double aloha_auto_tps = tags / aloha_auto_s;
    const double speedup = legacy_s / engine_s;
    const double sharded_speedup = engine_s / sharded_s;
    // Headline speedups compare the best fixed walk a caller would have
    // picked by hand (sequential) against the kAuto policy — the
    // acceptance criterion is that these never drop below ~1. The raw
    // sharded-vs-sequential ratios keep *_sharded_speedup columns.
    const double auto_speedup = engine_s / bloom_auto_s;
    const double sampled_sharded_speedup = sampled_s / sampled_sharded_s;
    const double sampled_speedup = sampled_s / sampled_auto_s;
    const double aloha_sharded_speedup = aloha_s / aloha_sharded_s;
    const double aloha_speedup = aloha_s / aloha_auto_s;

    std::printf(
        "%10zu %15.3e %15.3e %15.3e %7.2fx %7.2fx %7.2fx %15.3e %7.2fx "
        "%15.3e %7.2fx\n",
        n, legacy_tps, engine_tps, sharded_tps, speedup, sharded_speedup,
        auto_speedup, sampled_auto_tps, sampled_speedup, aloha_auto_tps,
        aloha_speedup);

    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"n\": %zu, \"legacy_s\": %.6f, "
                  "\"engine_s\": %.6f, \"sharded_s\": %.6f, "
                  "\"bloom_auto_s\": %.6f, "
                  "\"legacy_tags_per_s\": %.1f, "
                  "\"engine_tags_per_s\": %.1f, "
                  "\"sharded_tags_per_s\": %.1f, "
                  "\"bloom_auto_tags_per_s\": %.1f, \"speedup\": %.3f, "
                  "\"sharded_speedup\": %.3f, \"auto_speedup\": %.3f,\n"
                  "     \"sampled_s\": %.6f, \"sampled_sharded_s\": %.6f, "
                  "\"sampled_auto_s\": %.6f, "
                  "\"sampled_tags_per_s\": %.1f, "
                  "\"sampled_sharded_tags_per_s\": %.1f, "
                  "\"sampled_auto_tags_per_s\": %.1f, "
                  "\"sampled_sharded_speedup\": %.3f, "
                  "\"sampled_speedup\": %.3f,\n"
                  "     \"aloha_s\": %.6f, \"aloha_sharded_s\": %.6f, "
                  "\"aloha_auto_s\": %.6f, "
                  "\"aloha_tags_per_s\": %.1f, "
                  "\"aloha_sharded_tags_per_s\": %.1f, "
                  "\"aloha_auto_tags_per_s\": %.1f, "
                  "\"aloha_sharded_speedup\": %.3f, "
                  "\"aloha_speedup\": %.3f}",
                  first ? "" : ",", n, legacy_s, engine_s, sharded_s,
                  bloom_auto_s, legacy_tps, engine_tps, sharded_tps,
                  bloom_auto_tps, speedup, sharded_speedup, auto_speedup,
                  sampled_s, sampled_sharded_s, sampled_auto_s, sampled_tps,
                  sampled_sharded_tps, sampled_auto_tps,
                  sampled_sharded_speedup, sampled_speedup, aloha_s,
                  aloha_sharded_s, aloha_auto_s, aloha_tps,
                  aloha_sharded_tps, aloha_auto_tps, aloha_sharded_speedup,
                  aloha_speedup);
    json += buf;
    first = false;
  }
  json += "\n  ]\n}\n";

  const char* path = "BENCH_frame.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------
// --calibrate: measure the adaptive planner's cost-model coefficients.
//
// Every per-item coefficient is a SLOPE between two population sizes —
// (t(n2) − t(n1)) / (items(n2) − items(n1)) — so the walk's fixed
// costs, the w-slot observe term and the plane-word term (all constant
// in n at fixed w) cancel exactly, leaving the marginal cost the
// planner multiplies by its item count. Fixed/plane/slot coefficients
// come from shapes where the per-item work is (near) zero. The par
// columns and fixed costs are then biased +10%: the planner's promise
// is "never slower than sequential", so measurement noise must err
// toward the sequential walk.

/// One frame batch measured under one policy; rng stream style matches
/// run_baseline (seed 7, advancing across reps).
double calib_seconds(const std::vector<rfid::FrameRequest>& batch,
                     rfid::FrameMode mode, std::size_t n,
                     const rfid::ExecutionPolicy& policy) {
  const rfid::Channel ch;
  util::Xoshiro256ss rng(7);
  if (mode == rfid::FrameMode::kExact) {
    rfid::FrameEngine engine(pop_of(n), ch, mode, policy);
    return best_seconds(
        [&] { benchmark::DoNotOptimize(engine.execute_batch(batch, rng)); });
  }
  rfid::FrameEngine engine(n, ch);
  engine.set_policy(policy);
  return best_seconds(
      [&] { benchmark::DoNotOptimize(engine.execute_batch(batch, rng)); });
}

/// Same cache-line-padded bitmap layout formula as the sharded walk and
/// the planner (exec_plan.cpp) — the plane coefficient must price the
/// words that are actually zeroed and merged.
std::size_t calib_padded_words(std::uint32_t w) {
  return ((static_cast<std::size_t>(w) + 63) / 64 + 7) & ~std::size_t{7};
}

std::vector<rfid::FrameRequest> bloom_batch_of(rfid::BloomFrameConfig base) {
  std::vector<rfid::FrameRequest> batch;
  batch.reserve(kBatchFrames);
  for (std::size_t i = 0; i < kBatchFrames; ++i) {
    base.seeds = {3 * i + 1, 3 * i + 2, 3 * i + 3};
    batch.push_back(rfid::FrameRequest::bloom(base));
  }
  return batch;
}

int run_calibrate() {
  constexpr std::size_t kN1 = 100000;
  constexpr std::size_t kN2 = 1000000;
  constexpr double kParBias = 1.10;

  rfid::ExecutionPolicy seq_pol;  // sequential
  rfid::ExecutionPolicy par_pol = rfid::ExecutionPolicy::sharded(1);
  par_pol.allow_simd = false;
  par_pol.min_tags_per_shard = 1;
  rfid::ExecutionPolicy simd_pol = rfid::ExecutionPolicy::sharded(1);
  simd_pol.min_tags_per_shard = 1;

  struct Row {
    const char* name;
    std::vector<rfid::FrameRequest> batch;
    rfid::FrameMode mode;
    double items_per_n;  // planner item count per unit n, whole batch
  };

  rfid::BloomFrameConfig packed = bloom_cfg();  // p = 64/1024, on-grid
  rfid::BloomFrameConfig plain = bloom_cfg();
  plain.p = 0.3;  // off the 1/65536 grid → per-pair Bernoulli path
  rfid::BloomFrameConfig rn = bloom_cfg();
  rn.persistence = hash::PersistenceMode::kRnBits;

  std::vector<rfid::FrameRequest> singles;
  std::vector<rfid::FrameRequest> lotteries;
  for (std::size_t i = 0; i < kBatchFrames; ++i) {
    singles.push_back(rfid::FrameRequest::single_slot(0.01, 100 + i));
    lotteries.push_back(rfid::FrameRequest::lottery(32, 100 + i));
  }

  const double frames = static_cast<double>(kBatchFrames);
  std::vector<Row> rows;
  rows.push_back({"bloom_packed", bloom_batch_of(packed),
                  rfid::FrameMode::kExact, frames * packed.k});
  rows.push_back({"bloom_plain", bloom_batch_of(plain),
                  rfid::FrameMode::kExact, frames * plain.k});
  rows.push_back({"bloom_rn", bloom_batch_of(rn), rfid::FrameMode::kExact,
                  frames * rn.k});
  rows.push_back(
      {"aloha", aloha_batch(), rfid::FrameMode::kExact, frames});
  rows.push_back({"single", singles, rfid::FrameMode::kExact, frames});
  rows.push_back({"lottery", lotteries, rfid::FrameMode::kExact, frames});
  // Sampled scatter: expected draws per unit n = k·p per frame.
  rows.push_back({"sampled_draw", bloom_batch_of(packed),
                  rfid::FrameMode::kSampled,
                  frames * packed.k * packed.p});

  std::printf("# cost model calibrated by bench/micro_frame --calibrate\n"
              "# (slopes over n=%zu..%zu; par columns biased +%d%%)\n",
              kN1, kN2, static_cast<int>(kParBias * 100.0) - 100);

  const auto slope_ns = [&](double t1, double t2, double items_per_n) {
    const double ds = t2 - t1;
    const double items =
        items_per_n * static_cast<double>(kN2 - kN1);
    return std::max(ds * 1e9 / items, 0.01);
  };

  for (const Row& row : rows) {
    const double seq1 = calib_seconds(row.batch, row.mode, kN1, seq_pol);
    const double seq2 = calib_seconds(row.batch, row.mode, kN2, seq_pol);
    const double par1 = calib_seconds(row.batch, row.mode, kN1, par_pol);
    const double par2 = calib_seconds(row.batch, row.mode, kN2, par_pol);
    const double simd1 = calib_seconds(row.batch, row.mode, kN1, simd_pol);
    const double simd2 = calib_seconds(row.batch, row.mode, kN2, simd_pol);
    const double seq = slope_ns(seq1, seq2, row.items_per_n);
    const double par = slope_ns(par1, par2, row.items_per_n) * kParBias;
    const double par_simd = std::min(
        slope_ns(simd1, simd2, row.items_per_n) * kParBias, par);
    std::printf("%s.seq %.3f\n%s.par %.3f\n%s.par_simd %.3f\n", row.name,
                seq, row.name, par, row.name, par_simd);
  }

  // Fixed costs: a near-empty exact ALOHA frame (f = 64, n = 512) whose
  // per-item work is ~1 µs. sharded(2) − sharded(1) isolates one
  // shard's dispatch; what remains of sharded(1) is the walk setup.
  const std::vector<rfid::FrameRequest> tiny = {
      rfid::FrameRequest::aloha(64, 1.0, 7)};
  rfid::ExecutionPolicy two_pol = rfid::ExecutionPolicy::sharded(2);
  two_pol.allow_simd = false;
  two_pol.min_tags_per_shard = 1;
  const double tiny1 =
      calib_seconds(tiny, rfid::FrameMode::kExact, 512, par_pol);
  const double tiny2 =
      calib_seconds(tiny, rfid::FrameMode::kExact, 512, two_pol);
  const double shard_fixed =
      std::max((tiny2 - tiny1) * 1e9, 50.0) * kParBias;
  const double walk_fixed =
      std::max(tiny1 * 1e9 - shard_fixed, 100.0) * kParBias;

  // slot_ns: sequential sampled Bloom at p = 0 does nothing but observe
  // w slots per frame. plane_word_ns: the sharded walk at p = 0 does
  // nothing but zero + merge + observe its padded bitmap planes.
  rfid::BloomFrameConfig empty = bloom_cfg();
  empty.p = 0.0;
  empty.w = 1u << 20;
  const auto empty_batch = bloom_batch_of(empty);
  const double slots_s =
      calib_seconds(empty_batch, rfid::FrameMode::kSampled, kN2, seq_pol);
  const double slot_ns =
      std::max(slots_s * 1e9 / (frames * static_cast<double>(empty.w)),
               0.01);
  const double planes_s =
      calib_seconds(empty_batch, rfid::FrameMode::kSampled, kN2, par_pol);
  const double plane_words =
      frames * static_cast<double>(calib_padded_words(empty.w)) * 2.0;
  const double plane_word_ns =
      std::max((planes_s * 1e9 - walk_fixed - shard_fixed) / plane_words,
               0.01) *
      kParBias;

  std::printf("slot_ns %.3f\nplane_word_ns %.3f\n"
              "walk_fixed_ns %.1f\nshard_fixed_ns %.1f\n",
              slot_ns, plane_word_ns, walk_fixed, shard_fixed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--baseline") return run_baseline();
    if (std::string_view(argv[i]) == "--calibrate") return run_calibrate();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
