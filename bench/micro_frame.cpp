// Micro-benchmarks (google-benchmark): frame-executor throughput — the
// simulator's hot path. Shows the exact/sampled cost gap that motivates
// the two-mode design (DESIGN.md §5).

#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>

#include "rfid/frame.hpp"
#include "rfid/population.hpp"
#include "util/rng.hpp"

namespace {

using namespace bfce;

const rfid::TagPopulation& pop_of(std::size_t n) {
  static std::map<std::size_t, rfid::TagPopulation> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache
             .emplace(n, rfid::make_population(
                             n, rfid::TagIdDistribution::kT1Uniform, n))
             .first;
  }
  return it->second;
}

rfid::BloomFrameConfig bloom_cfg() {
  rfid::BloomFrameConfig cfg;
  cfg.set_p_numerator(64);
  cfg.seeds = {1, 2, 3};
  return cfg;
}

void BM_BloomFrameExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(1);
  const rfid::Channel ch;
  const auto cfg = bloom_cfg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::run_bloom_frame(pop, cfg, ch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomFrameExact)->Arg(10000)->Arg(100000);

void BM_BloomFrameSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(2);
  const rfid::Channel ch;
  const auto cfg = bloom_cfg();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::sampled_bloom_frame(n, cfg, ch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomFrameSampled)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SingleSlotExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(3);
  const rfid::Channel ch;
  const double q = 1.594 / static_cast<double>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::run_single_slot(pop, q, ++seed, ch, rng));
  }
}
BENCHMARK(BM_SingleSlotExact)->Arg(10000)->Arg(100000);

void BM_SingleSlotSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(4);
  const rfid::Channel ch;
  const auto n = static_cast<std::size_t>(state.range(0));
  const double q = 1.594 / static_cast<double>(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::sampled_single_slot(n, q, ch, rng));
  }
}
BENCHMARK(BM_SingleSlotSampled)->Arg(100000)->Arg(10000000);

void BM_LotteryFrameExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(5);
  const rfid::Channel ch;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rfid::run_lottery_frame(pop, 32, ++seed, ch, rng));
  }
}
BENCHMARK(BM_LotteryFrameExact)->Arg(10000)->Arg(100000);

void BM_AlohaFrameSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(6);
  const rfid::Channel ch;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rfid::sampled_aloha_frame(n, 1024, 1.594 * 1024 / static_cast<double>(n), ch, rng));
  }
}
BENCHMARK(BM_AlohaFrameSampled)->Arg(100000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
