// Micro-benchmarks (google-benchmark): frame-executor throughput — the
// simulator's hot path. Shows the exact/sampled cost gap that motivates
// the two-mode design (DESIGN.md §5), and the legacy-vs-FrameEngine gap
// that motivates the batched blocked path.
//
// Two entry points:
//   * default — the usual google-benchmark driver (filters, repetitions,
//     --benchmark_* flags all work);
//   * `--baseline` — a self-timed comparison at n ∈ {1e4, 1e5, 1e6},
//     written as machine-readable JSON to BENCH_frame.json (and echoed
//     to stdout): the 16-frame exact Bloom batch through the pre-engine
//     executor / execute_batch / the sharded walk, the same batch in
//     sampled mode (legacy executors vs the batched sampler), and a
//     16-frame exact ALOHA batch (sequential vs sharded).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string_view>
#include <vector>

#include "hash/slot_hash.hpp"
#include "rfid/frame.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/population.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace {

using namespace bfce;

constexpr std::size_t kBatchFrames = 16;

// The PRE-engine Bloom executor, verbatim (per-(tag, j) hasher
// construction, one Bernoulli draw per hash): the "legacy" side of the
// batch comparison. The free run_bloom_frame is nowadays a wrapper over
// the engine and already benefits from its hoisted premixing, so
// benchmarking it would understate what the engine replaced.
util::BitVector legacy_run_bloom_frame(const rfid::TagPopulation& tags,
                                       const rfid::BloomFrameConfig& cfg,
                                       const rfid::Channel& channel,
                                       util::Xoshiro256ss& rng) {
  std::vector<std::uint32_t> counts(cfg.w, 0);
  for (const rfid::Tag& tag : tags.tags()) {
    bool shared_respond = true;
    if (cfg.persistence == hash::PersistenceMode::kSharedDraw) {
      shared_respond = rng.bernoulli(cfg.p);
      if (!shared_respond) continue;
    }
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      std::uint32_t slot;
      if (cfg.hash == rfid::HashScheme::kIdeal) {
        slot = hash::IdealSlotHash(cfg.seeds[j]).slot(tag.id, cfg.w);
      } else {
        slot = hash::LightweightSlotHash(
                   static_cast<std::uint32_t>(cfg.seeds[j]))
                   .slot(tag.rn, cfg.w);
      }
      bool respond;
      switch (cfg.persistence) {
        case hash::PersistenceMode::kIdealBernoulli:
          respond = rng.bernoulli(cfg.p);
          break;
        case hash::PersistenceMode::kSharedDraw:
          respond = shared_respond;
          break;
        case hash::PersistenceMode::kRnBits:
          respond = hash::rn_bits_respond(
              tag.rn, slot, static_cast<std::uint32_t>(cfg.seeds[j]),
              cfg.p_n);
          break;
        default:
          respond = false;
      }
      if (respond) ++counts[slot];
    }
  }
  util::BitVector busy(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (rfid::is_busy(channel.observe(counts[i], rng))) busy.set(i);
  }
  return busy;
}

const rfid::TagPopulation& pop_of(std::size_t n) {
  static std::map<std::size_t, rfid::TagPopulation> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache
             .emplace(n, rfid::make_population(
                             n, rfid::TagIdDistribution::kT1Uniform, n))
             .first;
  }
  return it->second;
}

rfid::BloomFrameConfig bloom_cfg() {
  rfid::BloomFrameConfig cfg;
  cfg.set_p_numerator(64);
  cfg.seeds = {1, 2, 3};
  return cfg;
}

/// The 16-frame Bloom batch of the acceptance benchmark: same (w, k, p)
/// at 16 distinct seed triples, as a probe sequence would broadcast.
std::vector<rfid::FrameRequest> bloom_batch() {
  std::vector<rfid::FrameRequest> batch;
  batch.reserve(kBatchFrames);
  for (std::size_t i = 0; i < kBatchFrames; ++i) {
    rfid::BloomFrameConfig cfg = bloom_cfg();
    cfg.seeds = {3 * i + 1, 3 * i + 2, 3 * i + 3};
    batch.push_back(rfid::FrameRequest::bloom(cfg));
  }
  return batch;
}

void BM_BloomFrameExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(1);
  const rfid::Channel ch;
  const auto cfg = bloom_cfg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::run_bloom_frame(pop, cfg, ch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomFrameExact)->Arg(10000)->Arg(100000);

void BM_BloomFrameSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(2);
  const rfid::Channel ch;
  const auto cfg = bloom_cfg();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::sampled_bloom_frame(n, cfg, ch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomFrameSampled)->Arg(10000)->Arg(100000)->Arg(1000000);

// Legacy side of the acceptance comparison: 16 exact Bloom frames run
// one by one through the pre-engine executor.
void BM_BloomBatch16Legacy(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(7);
  const rfid::Channel ch;
  const auto batch = bloom_batch();
  for (auto _ : state) {
    for (const rfid::FrameRequest& req : batch) {
      benchmark::DoNotOptimize(legacy_run_bloom_frame(
          pop, std::get<rfid::BloomFrameConfig>(req.config), ch, rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(kBatchFrames));
}
BENCHMARK(BM_BloomBatch16Legacy)->Arg(10000)->Arg(100000);

// Engine side: the same 16 frames through execute_batch's blocked
// population walk (persistence decided before hashing, packed Bernoulli,
// scratch reuse).
void BM_BloomBatch16Engine(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(7);
  rfid::FrameEngine engine(pop, rfid::Channel{}, rfid::FrameMode::kExact);
  const auto batch = bloom_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.execute_batch(batch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(kBatchFrames));
}
BENCHMARK(BM_BloomBatch16Engine)->Arg(10000)->Arg(100000)->Arg(1000000);

// Sharded side: the same 16 frames through the ExecutionPolicy-sharded
// walk (counter-addressed persistence, word-packed busy synthesis, the
// packed AVX-512 decision kernel where the CPU has one).
void BM_BloomBatch16Sharded(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(7);
  rfid::FrameEngine engine(pop, rfid::Channel{}, rfid::FrameMode::kExact,
                           rfid::ExecutionPolicy::sharded());
  const auto batch = bloom_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.execute_batch(batch, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(kBatchFrames));
}
BENCHMARK(BM_BloomBatch16Sharded)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SingleSlotExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(3);
  const rfid::Channel ch;
  const double q = 1.594 / static_cast<double>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::run_single_slot(pop, q, ++seed, ch, rng));
  }
}
BENCHMARK(BM_SingleSlotExact)->Arg(10000)->Arg(100000);

void BM_SingleSlotSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(4);
  const rfid::Channel ch;
  const auto n = static_cast<std::size_t>(state.range(0));
  const double q = 1.594 / static_cast<double>(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::sampled_single_slot(n, q, ch, rng));
  }
}
BENCHMARK(BM_SingleSlotSampled)->Arg(100000)->Arg(10000000);

void BM_LotteryFrameExact(benchmark::State& state) {
  const auto& pop = pop_of(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256ss rng(5);
  const rfid::Channel ch;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rfid::run_lottery_frame(pop, 32, ++seed, ch, rng));
  }
}
BENCHMARK(BM_LotteryFrameExact)->Arg(10000)->Arg(100000);

void BM_AlohaFrameSampled(benchmark::State& state) {
  util::Xoshiro256ss rng(6);
  const rfid::Channel ch;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rfid::sampled_aloha_frame(n, 1024, 1.594 * 1024 / static_cast<double>(n), ch, rng));
  }
}
BENCHMARK(BM_AlohaFrameSampled)->Arg(100000)->Arg(1000000);

// ---------------------------------------------------------------------
// --baseline: the self-timed acceptance comparison → BENCH_frame.json.

/// Best-of-reps seconds for one run of `body`; repeats until at least
/// `kMinReps` runs and `kMinTotalS` of accumulated time.
template <typename F>
double best_seconds(F&& body) {
  constexpr int kMinReps = 3;
  constexpr double kMinTotalS = 0.2;
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < kMinReps || total < kMinTotalS; ++rep) {
    const auto t0 = clock::now();
    body();
    const auto t1 = clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    best = std::min(best, s);
    total += s;
  }
  return best;
}

/// 16 exact ALOHA frames (f = 1024, p = 1) at distinct seeds — the
/// non-Bloom probe of the sharded plan/render/reduce walk. p = 1 draws
/// no tag-side RNG, so the sharded result is bit-identical to the
/// sequential one.
std::vector<rfid::FrameRequest> aloha_batch() {
  std::vector<rfid::FrameRequest> batch;
  batch.reserve(kBatchFrames);
  for (std::size_t i = 0; i < kBatchFrames; ++i) {
    batch.push_back(rfid::FrameRequest::aloha(1024, 1.0, 100 + i));
  }
  return batch;
}

int run_baseline() {
  const std::vector<std::size_t> ns = {10000, 100000, 1000000};
  const auto batch = bloom_batch();
  const auto exact_aloha = aloha_batch();
  const auto cfg = bloom_cfg();

  std::string json;
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"micro_frame\",\n"
                "  \"batch_frames\": %zu,\n"
                "  \"frame\": {\"w\": %u, \"k\": %u, \"p\": %.6f},\n"
                "  \"points\": [",
                kBatchFrames, cfg.w, cfg.k, cfg.p);
  json += buf;

  std::printf("16-frame exact Bloom batch, pre-engine executor vs "
              "FrameEngine::execute_batch vs the sharded walk;\n"
              "plus the same batch in sampled mode (batched sampler) and "
              "a 16-frame exact ALOHA batch (f=1024, p=1)\n");
  std::printf("%10s %15s %15s %15s %8s %8s %15s %8s %15s %8s\n", "n",
              "legacy_tags/s", "engine_tags/s", "sharded_tags/s", "eng_x",
              "shard_x", "sampled_tags/s", "samp_x", "aloha_tags/s",
              "aloha_x");

  bool first = true;
  for (const std::size_t n : ns) {
    const auto& pop = pop_of(n);
    const rfid::Channel ch;

    util::Xoshiro256ss legacy_rng(7);
    const double legacy_s = best_seconds([&] {
      for (const rfid::FrameRequest& req : batch) {
        benchmark::DoNotOptimize(legacy_run_bloom_frame(
            pop, std::get<rfid::BloomFrameConfig>(req.config), ch,
            legacy_rng));
      }
    });

    rfid::FrameEngine engine(pop, ch, rfid::FrameMode::kExact);
    util::Xoshiro256ss engine_rng(7);
    const double engine_s = best_seconds([&] {
      benchmark::DoNotOptimize(engine.execute_batch(batch, engine_rng));
    });

    rfid::FrameEngine sharded(pop, ch, rfid::FrameMode::kExact,
                              rfid::ExecutionPolicy::sharded());
    util::Xoshiro256ss sharded_rng(7);
    const double sharded_s = best_seconds([&] {
      benchmark::DoNotOptimize(sharded.execute_batch(batch, sharded_rng));
    });

    // Sampled mode: the same 16-frame Bloom batch as aggregate response
    // draws — legacy per-frame executors vs the batched sampler.
    rfid::FrameEngine sampled_seq(n, ch);
    util::Xoshiro256ss sampled_seq_rng(7);
    const double sampled_s = best_seconds([&] {
      benchmark::DoNotOptimize(
          sampled_seq.execute_batch(batch, sampled_seq_rng));
    });

    rfid::FrameEngine sampled_shd(n, ch);
    sampled_shd.set_policy(rfid::ExecutionPolicy::sharded());
    util::Xoshiro256ss sampled_shd_rng(7);
    const double sampled_sharded_s = best_seconds([&] {
      benchmark::DoNotOptimize(
          sampled_shd.execute_batch(batch, sampled_shd_rng));
    });

    // Exact ALOHA: sequential per-frame walk vs the sharded walk.
    rfid::FrameEngine aloha_seq(pop, ch, rfid::FrameMode::kExact);
    util::Xoshiro256ss aloha_seq_rng(7);
    const double aloha_s = best_seconds([&] {
      benchmark::DoNotOptimize(
          aloha_seq.execute_batch(exact_aloha, aloha_seq_rng));
    });

    rfid::FrameEngine aloha_shd(pop, ch, rfid::FrameMode::kExact,
                                rfid::ExecutionPolicy::sharded());
    util::Xoshiro256ss aloha_shd_rng(7);
    const double aloha_sharded_s = best_seconds([&] {
      benchmark::DoNotOptimize(
          aloha_shd.execute_batch(exact_aloha, aloha_shd_rng));
    });

    const double tags = static_cast<double>(n * kBatchFrames);
    const double legacy_tps = tags / legacy_s;
    const double engine_tps = tags / engine_s;
    const double sharded_tps = tags / sharded_s;
    const double sampled_tps = tags / sampled_s;
    const double sampled_sharded_tps = tags / sampled_sharded_s;
    const double aloha_tps = tags / aloha_s;
    const double aloha_sharded_tps = tags / aloha_sharded_s;
    const double speedup = legacy_s / engine_s;
    const double sharded_speedup = engine_s / sharded_s;
    const double sampled_speedup = sampled_s / sampled_sharded_s;
    const double aloha_speedup = aloha_s / aloha_sharded_s;

    std::printf(
        "%10zu %15.3e %15.3e %15.3e %7.2fx %7.2fx %15.3e %7.2fx %15.3e "
        "%7.2fx\n",
        n, legacy_tps, engine_tps, sharded_tps, speedup, sharded_speedup,
        sampled_sharded_tps, sampled_speedup, aloha_sharded_tps,
        aloha_speedup);

    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"n\": %zu, \"legacy_s\": %.6f, "
                  "\"engine_s\": %.6f, \"sharded_s\": %.6f, "
                  "\"legacy_tags_per_s\": %.1f, "
                  "\"engine_tags_per_s\": %.1f, "
                  "\"sharded_tags_per_s\": %.1f, \"speedup\": %.3f, "
                  "\"sharded_speedup\": %.3f,\n"
                  "     \"sampled_s\": %.6f, \"sampled_sharded_s\": %.6f, "
                  "\"sampled_tags_per_s\": %.1f, "
                  "\"sampled_sharded_tags_per_s\": %.1f, "
                  "\"sampled_speedup\": %.3f,\n"
                  "     \"aloha_s\": %.6f, \"aloha_sharded_s\": %.6f, "
                  "\"aloha_tags_per_s\": %.1f, "
                  "\"aloha_sharded_tags_per_s\": %.1f, "
                  "\"aloha_speedup\": %.3f}",
                  first ? "" : ",", n, legacy_s, engine_s, sharded_s,
                  legacy_tps, engine_tps, sharded_tps, speedup,
                  sharded_speedup, sampled_s, sampled_sharded_s, sampled_tps,
                  sampled_sharded_tps, sampled_speedup, aloha_s,
                  aloha_sharded_s, aloha_tps, aloha_sharded_tps,
                  aloha_speedup);
    json += buf;
    first = false;
  }
  json += "\n  ]\n}\n";

  const char* path = "BENCH_frame.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--baseline") return run_baseline();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
