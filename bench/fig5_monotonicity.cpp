// Fig 5 — monotonicity of f1 and f2 in n for small persistence
// probabilities (w = 8192, k = 3, ε = 0.05).
//
// Paper shape: f1 decreases and f2 increases with n, crossing the ±d
// thresholds — which is what makes Theorem 4's "plug in the lower bound"
// argument sound.

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "math/erf.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"eps", "delta"});
  const double eps = cli.get_double("eps", 0.05);
  const double delta = cli.get_double("delta", 0.05);
  const double d = math::confidence_d(delta);

  util::Table table({"n", "f1(p=3/1024)", "f2(p=3/1024)", "f1(p=8/1024)",
                     "f2(p=8/1024)"});
  for (double n = 50000; n <= 1000000; n += 50000) {
    table.add_row(
        {util::Table::num(n, 0),
         util::Table::num(core::f1(n, 8192, 3, 3.0 / 1024.0, eps), 3),
         util::Table::num(core::f2(n, 8192, 3, 3.0 / 1024.0, eps), 3),
         util::Table::num(core::f1(n, 8192, 3, 8.0 / 1024.0, eps), 3),
         util::Table::num(core::f2(n, 8192, 3, 8.0 / 1024.0, eps), 3)});
  }
  bench::emit(cli, "Fig 5: f1/f2 vs n (w=8192, k=3, eps=" +
                       util::Table::num(eps, 2) + ")",
              table);
  std::printf("threshold d = sqrt(2)*erfinv(1-delta) = %.4f  "
              "(Theorem 3 needs f1 <= -d and f2 >= +d)\n",
              d);
  std::puts("shape check: each f1 column strictly decreasing, each f2 "
            "column strictly increasing in n.");
  return 0;
}
