// Fig 8 — cumulative distribution of BFCE's estimates over 100 rounds,
// n = 500000, (ε, δ) = (0.05, 0.05), per tagID distribution.
//
// Paper shape: all three CDFs rise steeply around the true cardinality —
// estimates tightly concentrated, distribution-independent.

#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "core/bfce.hpp"
#include "math/stats.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"rounds", "n", "exact"});
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 100));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 500000));
  bench::PopulationCache pops(cli.seed());

  util::Table table({"percentile", "T1_n_hat", "T2_n_hat", "T3_n_hat"});
  std::vector<std::vector<double>> estimates(3);
  for (int d = 0; d < 3; ++d) {
    sim::ExperimentConfig cfg;
    cfg.trials = rounds;
    cfg.req = {0.05, 0.05};
    cfg.mode = bench::mode_from(cli);
    cfg.seed = cli.seed() + static_cast<std::uint64_t>(d) * 7717;
    const auto records = sim::run_experiment(
        pops.get(n, rfid::kAllDistributions[d]),
        [] { return std::make_unique<core::BfceEstimator>(); }, cfg);
    for (const auto& r : records) {
      estimates[static_cast<std::size_t>(d)].push_back(r.n_hat);
    }
    std::sort(estimates[static_cast<std::size_t>(d)].begin(),
              estimates[static_cast<std::size_t>(d)].end());
  }
  for (const double q :
       {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    table.add_row({util::Table::num(q, 2),
                   util::Table::num(math::quantile_sorted(estimates[0], q), 0),
                   util::Table::num(math::quantile_sorted(estimates[1], q), 0),
                   util::Table::num(math::quantile_sorted(estimates[2], q), 0)});
  }
  bench::emit(cli,
              "Fig 8: CDF of " + std::to_string(rounds) +
                  " BFCE estimates, n=" + std::to_string(n),
              table);
  std::printf("shape check: 1%%..99%% spread within ~±%.0f%% of n=%zu for "
              "all three distributions (tight concentration).\n",
              5.0, n);
  return 0;
}
