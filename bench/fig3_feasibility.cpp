// Fig 3 — feasibility of BFCE: the near-linear relation between the tag
// cardinality n and the number of 0s/1s in the Bloom vector B, for
// w = 8192, k = 3 and p ∈ {0.1, 0.2}.
//
// Paper shape to reproduce: #1s (idle slots) decays with n, #0s (busy
// slots) rises, and for moderate loads the relation looks linear; the
// analytic expectation w·e^{−λ} tracks the measurements.

#include <cmath>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "rfid/frame.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials", "exact"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  bench::PopulationCache pops(cli.seed());

  util::Table table({"n", "p", "ones_measured", "zeros_measured",
                     "ones_expected", "zeros_expected"});

  constexpr std::uint32_t kW = 8192;
  constexpr std::uint32_t kK = 3;
  for (std::size_t n = 0; n <= 100000; n += 10000) {
    for (const double p : {0.1, 0.2}) {
      double ones_sum = 0.0;
      const auto& pop =
          pops.get(n, rfid::TagIdDistribution::kT1Uniform);
      for (std::size_t t = 0; t < trials; ++t) {
        util::Xoshiro256ss rng(util::derive_seed(cli.seed(), t * 7919 + n));
        rfid::BloomFrameConfig cfg;
        cfg.w = kW;
        cfg.k = kK;
        cfg.p = p;
        cfg.p_n = static_cast<std::uint32_t>(p * 1024.0);
        for (std::uint32_t j = 0; j < kK; ++j) cfg.seeds[j] = rng();
        const rfid::Channel ch;
        const util::BitVector busy =
            cli.has("exact")
                ? rfid::run_bloom_frame(pop, cfg, ch, rng)
                : rfid::sampled_bloom_frame(n, cfg, ch, rng);
        // Paper polarity: B(i)=1 ⇔ idle.
        ones_sum += static_cast<double>(kW - busy.count_ones());
      }
      const double ones = ones_sum / static_cast<double>(trials);
      const double lambda =
          core::slot_load(static_cast<double>(n), kW, kK, p);
      const double ones_exp = kW * std::exp(-lambda);
      table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                     util::Table::num(p, 1), util::Table::num(ones, 1),
                     util::Table::num(8192.0 - ones, 1),
                     util::Table::num(ones_exp, 1),
                     util::Table::num(8192.0 - ones_exp, 1)});
    }
  }
  bench::emit(cli, "Fig 3: #0s/#1s in B vs n (w=8192, k=3)", table);
  std::puts("shape check: ones decay ~ w*exp(-3pn/w); near-linear for small "
            "lambda; measurements should track the expectation columns.");
  return 0;
}
