// CUSUM monitor detection-latency bench (beyond the paper): how many
// monitoring periods until a drift of a given rate is detected, and at
// what false-alarm cost.

#include "bench_common.hpp"
#include "core/bfce.hpp"
#include "core/monitor.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"

using namespace bfce;

namespace {

/// Runs one monitored story: `warmup` stable periods then drift at
/// `loss_per_period`; returns periods-until-alarm (or -1).
int detection_latency(double loss_per_period, std::uint64_t seed,
                      int warmup = 12, int horizon = 80) {
  core::BfceEstimator bfce;
  core::CardinalityMonitor monitor;
  double truth = 100000.0;
  for (int t = 0; t < warmup + horizon; ++t) {
    if (t >= warmup) truth *= 1.0 - loss_per_period;
    const auto pop = rfid::make_population(
        static_cast<std::size_t>(truth),
        rfid::TagIdDistribution::kT1Uniform,
        seed * 1000 + static_cast<std::uint64_t>(t));
    rfid::ReaderContext ctx(pop,
                            seed ^ (static_cast<std::uint64_t>(t) << 20),
                            rfid::FrameMode::kSampled);
    const auto r = monitor.update(bfce, ctx);
    if (t >= warmup && r.loss_alarm) return t - warmup + 1;
    if (t < warmup && (r.loss_alarm || r.gain_alarm)) {
      return -2;  // false alarm during warmup
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials"});
  const auto trials = static_cast<int>(cli.get_int("trials", 8));

  util::Table table({"loss_per_period", "detect_mean_periods",
                     "detect_max", "missed", "false_alarms"});
  for (const double rate : {0.002, 0.005, 0.01, 0.02, 0.05}) {
    math::RunningStats latency;
    int missed = 0;
    int false_alarms = 0;
    for (int t = 0; t < trials; ++t) {
      const int lat = detection_latency(
          rate, cli.seed() + static_cast<std::uint64_t>(t));
      if (lat == -1) {
        ++missed;
      } else if (lat == -2) {
        ++false_alarms;
      } else {
        latency.add(static_cast<double>(lat));
      }
    }
    table.add_row({util::Table::num(rate, 3),
                   util::Table::num(latency.mean(), 1),
                   util::Table::num(latency.max(), 0),
                   util::Table::num(static_cast<std::int64_t>(missed)),
                   util::Table::num(
                       static_cast<std::int64_t>(false_alarms))});
  }
  bench::emit(cli,
              "CUSUM monitor: periods to detect sustained loss "
              "(eps=0.05 readings, one BFCE round per period)",
              table);
  std::puts("shape check: detection latency scales ~1/rate (a 0.5%/period "
            "trickle takes tens of periods, 5%/period takes ~2) with no "
            "false alarms during the stable warmup.");
  return 0;
}
