// Fig 7 — BFCE estimation accuracy under different settings and tagID
// distributions:
//   (a) vs n, (ε, δ) = (0.05, 0.05), c = 0.5, T1/T2/T3;
//   (b) vs ε ∈ [0.05, 0.3], n = 500000;
//   (c) vs δ ∈ [0.05, 0.3], n = 500000.
//
// Paper shape: accuracy ≪ ε everywhere, independent of the distribution.

#include <memory>

#include "bench_common.hpp"
#include "core/bfce.hpp"

using namespace bfce;

namespace {

sim::ExperimentSummary run_point(bench::PopulationCache& pops,
                                 std::size_t n, rfid::TagIdDistribution d,
                                 double eps, double delta,
                                 const util::Cli& cli, std::size_t trials) {
  sim::ExperimentConfig cfg;
  cfg.trials = trials;
  cfg.req = {eps, delta};
  cfg.mode = bench::mode_from(cli);
  cfg.seed = cli.seed() ^ (n * 2654435761ULL) ^
             static_cast<std::uint64_t>(eps * 1e4) ^
             (static_cast<std::uint64_t>(delta * 1e4) << 20) ^
             static_cast<std::uint64_t>(d);
  const auto records = sim::run_experiment(
      pops.get(n, d), [] { return std::make_unique<core::BfceEstimator>(); },
      cfg);
  return sim::summarize_records(records, eps);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"trials", "exact"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 25));
  bench::PopulationCache pops(cli.seed());

  // (a) accuracy vs n.
  util::Table a({"n", "dist", "acc_mean", "acc_p95", "acc_max",
                 "violation_rate"});
  for (std::size_t n : {50000UL, 100000UL, 200000UL, 500000UL, 1000000UL}) {
    for (const auto d : rfid::kAllDistributions) {
      const auto s = run_point(pops, n, d, 0.05, 0.05, cli, trials);
      a.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                 rfid::to_string(d), util::Table::num(s.accuracy.mean, 4),
                 util::Table::num(s.accuracy.p95, 4),
                 util::Table::num(s.accuracy.max, 4),
                 util::Table::num(s.violation_rate, 3)});
    }
  }
  bench::emit(cli, "Fig 7(a): accuracy vs n, (eps,delta)=(0.05,0.05), c=0.5",
              a);

  // (b) accuracy vs ε at n = 500000.
  util::Table b({"eps", "dist", "acc_mean", "acc_max", "violation_rate"});
  for (const double eps : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    for (const auto d : rfid::kAllDistributions) {
      const auto s = run_point(pops, 500000, d, eps, 0.05, cli, trials);
      b.add_row({util::Table::num(eps, 2), rfid::to_string(d),
                 util::Table::num(s.accuracy.mean, 4),
                 util::Table::num(s.accuracy.max, 4),
                 util::Table::num(s.violation_rate, 3)});
    }
  }
  bench::emit(cli, "Fig 7(b): accuracy vs eps, n=500000, delta=0.05", b);

  // (c) accuracy vs δ at n = 500000.
  util::Table c({"delta", "dist", "acc_mean", "acc_max", "violation_rate"});
  for (const double delta : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    for (const auto d : rfid::kAllDistributions) {
      const auto s = run_point(pops, 500000, d, 0.05, delta, cli, trials);
      c.add_row({util::Table::num(delta, 2), rfid::to_string(d),
                 util::Table::num(s.accuracy.mean, 4),
                 util::Table::num(s.accuracy.max, 4),
                 util::Table::num(s.violation_rate, 3)});
    }
  }
  bench::emit(cli, "Fig 7(c): accuracy vs delta, n=500000, eps=0.05", c);

  std::puts("shape check (paper): accuracy close to 0 for every n and "
            "distribution; below 0.04 for every eps; violation_rate <= "
            "delta at every point.");
  return 0;
}
