#!/usr/bin/env python3
"""Repo-specific determinism & concurrency-hygiene lint.

The repository's central invariant is that every estimate is a pure
function of its spec: bit-identical across worker counts, queue orders
and planner-cache state (this is what BFCE's (eps, delta) guarantees
from Theorems 3-4 rest on, and what tests/service_test.cpp asserts).
Generic tools cannot enforce that, so this lint bans the sources of
nondeterminism that would silently break it:

  * std::random_device / rand() / srand() / time(nullptr) — ambient
    entropy. All randomness must flow from util::Xoshiro256ss seeded
    through util::derive_seed / util::SeedMixer.
  * std::mt19937 & friends — the repo has exactly one RNG family
    (util/rng.hpp); a second engine forks the reproducibility story.
  * std::chrono::...::now() — wall-clock reads are allowed only in the
    metrics/deadline allowlist below; anywhere else they leak the
    scheduler into results.
  * unseeded Xoshiro256ss construction — a default-constructed stream
    is a stealth constant seed; every stream must state its seed.
  * function-local `static` mutable state in estimator and tracking
    code — hidden cross-call coupling breaks the fresh-instance-per-
    attempt contract and the bit-identical-trajectory contract.
  * raw std::thread outside src/service and src/util/parallel — all
    concurrency goes through the worker pool or util::parallel_for so
    the (master seed, index) seeding contract stays enforceable.

Scope: src/ only (tests, benches, examples and tools are free to time
and thread as they like). A finding can be suppressed with an inline
`// lint:allow(<rule>) <why>` comment on the same line or the line
directly above; docs/TOOLING.md explains when that is acceptable.

Exit status: 0 clean, 1 findings (file:line diagnostics on stderr),
2 usage/environment error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Files under src/ allowed to read wall clocks: the metrics/deadline
# layer, where wall time is the *product* (latency percentiles, queue
# expiry) and never feeds an estimate.
NOW_ALLOWLIST = {
    "src/service/service.cpp",   # queue-wait / latency / expiry clocks
    "src/service/metrics.cpp",   # snapshot rendering
    "src/rfid/frame_engine.cpp", # EngineCounters busy_us timing
}

# Directories whose files may construct raw std::thread.
THREAD_ALLOWLIST_PREFIXES = (
    "src/service/",       # the worker pool
    "src/util/parallel",  # parallel_for's fork/join pool
)

# Estimator/tracker/engine code where function-local mutable `static`
# state is banned (src/tracking must stay a pure function of its inputs
# for the service's bit-identical-trajectory contract; src/rfid holds
# the sharded walk, the batched sampler and the SIMD scatter/decide
# tiles, whose shard-count invariance dies the moment any kernel keeps
# mutable state between calls).
STATIC_SCOPE_PREFIXES = (
    "src/core/",
    "src/estimators/",
    "src/federation/",
    "src/tracking/",
    "src/rfid/",
)

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9_,\- ]+)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Rule:
    def __init__(self, name: str, pattern: str, message: str,
                 applies=lambda rel: True):
        self.name = name
        self.pattern = re.compile(pattern)
        self.message = message
        self.applies = applies


RULES = [
    Rule(
        "random-device",
        r"std\s*::\s*random_device",
        "std::random_device is ambient entropy; derive seeds with "
        "util::derive_seed / util::SeedMixer instead",
    ),
    Rule(
        "libc-rand",
        r"(?<![\w:.])s?rand\s*\(",
        "rand()/srand() is hidden global state; use util::Xoshiro256ss "
        "with an explicit seed",
    ),
    Rule(
        "wall-clock-seed",
        r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0)\s*\)",
        "time(nullptr) seeds results with the wall clock; thread an "
        "explicit seed through the spec instead",
    ),
    Rule(
        "foreign-rng",
        r"std\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|"
        r"ranlux\w+|knuth_b)",
        "the repo's only RNG family is util::Xoshiro256ss (util/rng.hpp); "
        "a second engine forks reproducibility",
    ),
    Rule(
        "clock-now",
        r"(?<![\w:])(?:std\s*::\s*chrono\s*::\s*)?"
        r"(?:steady_clock|system_clock|high_resolution_clock|Clock)\s*::\s*"
        r"now\s*\(",
        "wall-clock reads outside the metrics/deadline allowlist leak the "
        "scheduler into results (see docs/TOOLING.md to extend the "
        "allowlist)",
        applies=lambda rel: rel not in NOW_ALLOWLIST,
    ),
    Rule(
        "unseeded-rng",
        r"Xoshiro256ss\s+\w+\s*(;|\{\s*\})",
        "unseeded Xoshiro256ss is a stealth constant seed; state the "
        "seed explicitly",
    ),
    Rule(
        "static-local-state",
        r"^\s+static\s+(?!const\b|constexpr\b|assert\b|_assert)",
        "function-local mutable `static` state in estimator code breaks "
        "the fresh-instance-per-attempt contract",
        applies=lambda rel: rel.startswith(STATIC_SCOPE_PREFIXES)
        and rel.endswith(".cpp"),
    ),
    Rule(
        "raw-thread",
        r"std\s*::\s*(thread|jthread)\b",
        "raw std::thread outside src/service and src/util/parallel; route "
        "concurrency through EstimationService or util::parallel_for",
        applies=lambda rel: not rel.startswith(THREAD_ALLOWLIST_PREFIXES),
    ),
]


def strip_noise(line: str) -> str:
    """Drop string literals and trailing // comments so prose and
    logging text never trip a rule. (Block comments are handled by the
    caller's in_block flag.)"""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


def lint_file(path: Path, rel: str) -> list[str]:
    findings = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}: unreadable: {err}"]

    in_block = False
    carried_allow: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        allow = ALLOW_RE.search(raw)
        allowed = set(carried_allow)
        if allow:
            tokens = {t.strip() for t in allow.group(1).split(",")}
            allowed |= tokens
            # A standalone allow-comment line covers the next line too.
            carried_allow = tokens if raw.strip().startswith("//") else set()
        else:
            carried_allow = set()

        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block = False
        # Strip /* ... */ spans (a line may open one that continues).
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + line[end + 2:]

        code = strip_noise(line)
        if not code.strip():
            continue
        for rule in RULES:
            if not rule.applies(rel):
                continue
            if rule.name in allowed:
                continue
            if rule.pattern.search(code):
                findings.append(
                    f"{rel}:{lineno}: [{rule.name}] {rule.message}\n"
                    f"    {raw.strip()}"
                )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)")
    parser.add_argument(
        "paths", nargs="*",
        help="restrict the scan to these files/dirs (repo-relative)")
    args = parser.parse_args()

    root = args.root.resolve()
    src = root / "src"
    if not src.is_dir():
        print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
        return 2

    if args.paths:
        targets = []
        for p in args.paths:
            path = (root / p).resolve()
            if path.is_dir():
                targets.extend(sorted(path.rglob("*")))
            else:
                targets.append(path)
    else:
        targets = sorted(src.rglob("*"))

    findings = []
    scanned = 0
    for path in targets:
        if path.suffix not in {".cpp", ".hpp", ".h", ".cc", ".cxx"}:
            continue
        rel = path.relative_to(root).as_posix()
        scanned += 1
        findings.extend(lint_file(path, rel))

    if findings:
        print("determinism lint: FAILED", file=sys.stderr)
        for f in findings:
            print(f, file=sys.stderr)
        print(f"\n{len(findings)} finding(s) in {scanned} file(s). "
              "See docs/TOOLING.md for the rule rationale and how to add "
              "an exemption.", file=sys.stderr)
        return 1
    print(f"determinism lint: OK ({scanned} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
