#!/usr/bin/env python3
"""Thin compatibility shim over the semantic analyzer.

The regex rules that used to live here were ported into
`tools/analyze` (package `analyze`, rule family `determinism`), which
also runs the semantic RNG-provenance / lock-discipline /
draw-discipline families and enforces suppression hygiene.  This shim
keeps the old entry point and flags working for scripts and muscle
memory:

    python3 tools/lint_determinism.py [--root R] [paths...]

is exactly `python3 tools/analyze [--root R] [paths...]`.  Exit codes
are unchanged: 0 clean, 1 findings, 2 usage error.  See
docs/TOOLING.md for the rule catalogue and the suppression policy.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analyze.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
