"""Executor-reentrancy rule.

util::parallel_for is nesting-safe by design: a dispatched lambda may
freely call parallel_for again — the inner dispatch runs inline on the
worker's own lane (src/util/executor.hpp documents the contract). What
a dispatched lambda must NOT do is *block on a join*: joining a thread,
waiting on a condition variable, or tearing down the pool
(`Executor::shutdown()`) from inside a worker stalls the lane the
lambda occupies and can deadlock the pool against itself (a worker
joining the team it is part of never returns). The sanctioned path for
nested parallelism is the nesting-safe dispatch API itself, and any
join belongs on the dispatching side, after parallel_for returns.

Concretely, inside any lambda passed to a dispatch call the rule flags:

  * direct blocking joins — `join`, `wait`, `wait_for`, `wait_until`,
    and zero-argument `shutdown` (the two-argument spelling is the
    POSIX socket shutdown and is exempt);
  * calls that resolve to repo functions which (transitively) perform
    such a join.

The executor/parallel_for implementation itself is exempt from seeding
the transitive closure: its internal waits ARE the sanctioned dispatch
machinery, and treating them as violations would flag every nested
parallel_for.
"""

from __future__ import annotations

from .findings import Finding
from .model import DISPATCH_NAMES, Repo
from .rules_locks import _callee_functions, _transitive

_BLOCKING_WAITS = {"wait", "wait_for", "wait_until"}

# Files whose functions never seed the blocking closure: the dispatch
# machinery's own waits implement the nesting-safe API.
_IMPL_PREFIXES = ("src/util/executor", "src/util/parallel")


def _blocking_kind(call) -> str | None:
    """The blocking-join kind a call performs, or None.

    `shutdown` counts only when spelled with no arguments — pool
    teardown joins every worker; the two-argument form is the POSIX
    socket shutdown (src/service/wire.cpp half-closes fds with it).
    """
    if call.name == "join":
        return "join"
    if call.name in _BLOCKING_WAITS:
        return call.name
    if call.name == "shutdown" and not call.args:
        return "shutdown"
    return None


def run(repo: Repo, scanned: set[str]) -> list[Finding]:
    # Seed map: function name -> blocking kinds it performs directly.
    seeds: dict[str, set[str]] = {}
    for fm in repo.files.values():
        if fm.rel not in scanned or fm.rel.startswith(_IMPL_PREFIXES):
            continue
        for fn in fm.functions:
            for call in fn.calls:
                kind = _blocking_kind(call)
                if kind is not None:
                    seeds.setdefault(fn.name, set()).add(kind)
    trans = _transitive(repo, scanned, seeds)

    findings: list[Finding] = []
    for fm in repo.files.values():
        if fm.rel not in scanned:
            continue
        for fn in fm.functions:
            dispatched = [lam for lam in fn.lambdas
                          if lam.dispatch is not None]
            if not dispatched:
                continue
            for call in fn.calls:
                if not any(lam.body[0] <= call.tok <= lam.body[1]
                           for lam in dispatched):
                    continue
                kind = _blocking_kind(call)
                if kind is not None:
                    findings.append(Finding(
                        rule="executor-reentrancy", rel=fm.rel,
                        line=call.line, col=1,
                        message=(f"blocking '{kind}' inside a lambda "
                                 "dispatched onto the worker pool stalls "
                                 "(or deadlocks) the lane it occupies; "
                                 "hoist the join out of the parallel "
                                 "region — nested parallel_for is the "
                                 "sanctioned path for nested work")))
                    continue
                if call.name in DISPATCH_NAMES:
                    continue  # nesting-safe re-dispatch: sanctioned
                for callee in _callee_functions(repo, fn, call):
                    kinds = trans.get(callee.name, set())
                    if kinds:
                        joined = "/".join(sorted(kinds))
                        findings.append(Finding(
                            rule="executor-reentrancy", rel=fm.rel,
                            line=call.line, col=1,
                            message=(f"'{callee.name}' performs a "
                                     f"blocking join ({joined}) and is "
                                     "called from a lambda dispatched "
                                     "onto the worker pool; hoist the "
                                     "join out of the parallel region")))
                        break
    return findings
