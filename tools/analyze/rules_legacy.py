"""The determinism rules ported from tools/lint_determinism.py, now
token/model-based instead of line regexes.

Two get strictly smarter in the port:

  * `unseeded-rng` is semantic — a `Xoshiro256ss` *member* declared
    without an initializer is exempt when every constructor of its class
    seeds it in the init-list (the analyzer checks the ctors, including
    out-of-line definitions in another file of the TU), so the old
    `// lint:allow(unseeded-rng)` member annotations are no longer
    needed.
  * string literals and comments can no longer trip any rule, because
    rules run on the token stream.

Allowlists (wall-clock files, raw-thread directories, static-local
scope) keep the exact semantics documented in docs/TOOLING.md.
"""

from __future__ import annotations

from .cpptok import ID, OP
from .findings import Finding
from .model import Repo
from .rules_rng import RNG_TYPE

# Files under src/ allowed to read wall clocks: the metrics/deadline
# layer, where wall time is the *product* and never feeds an estimate.
NOW_ALLOWLIST = {
    "src/service/service.cpp",   # queue-wait / latency / expiry clocks
    "src/service/metrics.cpp",   # snapshot rendering
    "src/service/wire.cpp",      # per-connection io deadlines
    "src/rfid/frame_engine.cpp",  # EngineCounters busy_us timing
}

# Directories whose files may construct raw std::thread.
THREAD_ALLOWLIST_PREFIXES = (
    "src/service/",       # the worker pool
    "src/util/executor",  # the persistent work-stealing pool
    "src/util/parallel",  # parallel_for's dispatch front-end
)

# Estimator/tracker/engine code where function-local mutable `static`
# state is banned.
STATIC_SCOPE_PREFIXES = (
    "src/core/",
    "src/estimators/",
    "src/federation/",
    "src/tracking/",
    "src/rfid/",
)

FOREIGN_RNGS = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "knuth_b",
}

CLOCK_QUALS = ("steady_clock", "system_clock", "high_resolution_clock",
               "Clock")


def run(repo: Repo, scanned: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    for rel in sorted(scanned):
        fm = repo.files.get(rel)
        if fm is None:
            continue
        findings.extend(_token_rules(fm))
        findings.extend(_call_rules(fm))
        findings.extend(_static_rule(fm))
    findings.extend(_unseeded_rule(repo, scanned))
    return findings


def _token_rules(fm) -> list[Finding]:
    out = []
    toks = fm.tokens
    for i, t in enumerate(toks):
        if t.kind != ID:
            continue
        std_qualified = (i >= 2 and toks[i - 1].kind == OP
                         and toks[i - 1].text == "::"
                         and toks[i - 2].kind == ID
                         and toks[i - 2].text == "std")
        if t.text == "random_device" and std_qualified:
            out.append(Finding(
                rule="random-device", rel=fm.rel, line=t.line, col=t.col,
                message=("std::random_device is ambient entropy; derive "
                         "seeds with util::derive_seed / "
                         "util::SeedMixer")))
        elif (t.text in FOREIGN_RNGS or t.text.startswith("ranlux")) \
                and std_qualified:
            out.append(Finding(
                rule="foreign-rng", rel=fm.rel, line=t.line, col=t.col,
                message=("the repo's only RNG family is "
                         "util::Xoshiro256ss (util/rng.hpp); a second "
                         "engine forks reproducibility")))
        elif t.text in {"thread", "jthread"} and std_qualified and \
                not fm.rel.startswith(THREAD_ALLOWLIST_PREFIXES):
            out.append(Finding(
                rule="raw-thread", rel=fm.rel, line=t.line, col=t.col,
                message=("raw std::thread outside src/service and the "
                         "src/util executor/parallel_for layer; route "
                         "concurrency through EstimationService or "
                         "util::parallel_for")))
    return out


def _call_rules(fm) -> list[Finding]:
    out = []
    for fn in fm.functions:
        for call in fn.calls:
            if call.name in {"rand", "srand"} and call.recv is None:
                out.append(Finding(
                    rule="libc-rand", rel=fm.rel, line=call.line, col=1,
                    message=("rand()/srand() is hidden global state; use "
                             "util::Xoshiro256ss with an explicit "
                             "seed")))
            elif call.name == "time" and call.recv is None and \
                    len(call.args) == 1:
                lo, hi = call.args[0]
                arg = " ".join(t.text for t in fm.tokens[lo:hi])
                if arg in {"nullptr", "NULL", "0"}:
                    out.append(Finding(
                        rule="wall-clock-seed", rel=fm.rel, line=call.line,
                        col=1,
                        message=("time(nullptr) seeds results with the "
                                 "wall clock; thread an explicit seed "
                                 "through the spec instead")))
            elif call.name == "now" and fm.rel not in NOW_ALLOWLIST:
                qual_parts = call.qual.split("::")
                recv_leaf = (call.recv or "").split("::")[-1]
                if (len(qual_parts) >= 2
                        and qual_parts[-2] in CLOCK_QUALS) or \
                        recv_leaf in CLOCK_QUALS:
                    out.append(Finding(
                        rule="clock-now", rel=fm.rel, line=call.line, col=1,
                        message=("wall-clock reads outside the metrics/"
                                 "deadline allowlist leak the scheduler "
                                 "into results (see docs/TOOLING.md to "
                                 "extend the allowlist)")))
    return out


def _static_rule(fm) -> list[Finding]:
    if not (fm.rel.startswith(STATIC_SCOPE_PREFIXES)
            and fm.rel.endswith(".cpp")):
        return []
    out = []
    for fn in fm.functions:
        for st in fn.statics:
            if st.is_const:
                continue
            out.append(Finding(
                rule="static-local-state", rel=fm.rel,
                line=fm.tokens[st.tok].line, col=1,
                message=(f"function-local mutable `static` "
                         f"'{st.name}' in estimator code breaks the "
                         "fresh-instance-per-attempt contract")))
    return out


def _unseeded_rule(repo: Repo, scanned: set[str]) -> list[Finding]:
    out = []
    for rel in sorted(scanned):
        fm = repo.files.get(rel)
        if fm is None:
            continue
        # Locals declared with no initializer.
        for fn in fm.functions:
            for loc in fn.locals.values():
                if RNG_TYPE in loc.type_text and loc.init is None:
                    out.append(Finding(
                        rule="unseeded-rng", rel=fm.rel,
                        line=fm.tokens[loc.tok].line, col=1,
                        message=(f"Xoshiro256ss '{loc.name}' is never "
                                 "seeded — a stealth constant seed; "
                                 "state the seed explicitly")))
        # Members: exempt iff every ctor of the class seeds them.
        for cls in fm.classes.values():
            for name, m in cls.members.items():
                if RNG_TYPE not in m.type_text or m.init is not None:
                    continue
                ctors = [fn for fn in repo.functions()
                         if fn.is_ctor and fn.cls == cls.name]
                seeded = bool(ctors) and all(
                    any(mname == name and rng_[1] > rng_[0]
                        for mname, rng_ in fn.init_list)
                    for fn in ctors)
                if not seeded:
                    out.append(Finding(
                        rule="unseeded-rng", rel=fm.rel,
                        line=fm.tokens[m.tok].line, col=1,
                        message=(f"Xoshiro256ss member '{name}' of "
                                 f"{cls.name} is not seeded in every "
                                 "constructor init-list — a stealth "
                                 "constant seed")))
    return out
