"""RNG provenance & purity rules.

`rng-provenance` — every `Xoshiro256ss` construction (local, member
init-list) and every `splitmix_at` counter base must be *derived*: the
seed expression, traced through local initializers, struct-field writes
and function parameters (via the repo-wide call graph), must reach a
sanctioned source — `util::derive_seed`, `util::SeedMixer`,
`util::splitmix_at`, or the hash::mix seed premixers.  A trace that
bottoms out in nothing but literals (or unsanctioned calls) is a
stealth-constant or ambient seed and is reported — at the construction
when it is locally wrong, at the *call site* when a caller passes a
bad value into a seed parameter.

`rng-purity` — a function that draws randomness (invokes a
Xoshiro-typed value or `draw_binomial`) must not also touch mutable
namespace-scope or function-`static` state (synchronisation primitives
exempt): hidden cross-call coupling breaks the fresh-instance contract
the bit-identical guarantees rest on.
"""

from __future__ import annotations

from .cpptok import ID, NUM, OP
from .findings import Finding
from .model import Function, Repo, SYNC_TYPES, read_qualified

# Calls that establish provenance by construction.
SOURCING_CALLS = {
    "derive_seed", "splitmix_at", "mix_with_seed", "premix_seed",
    "fmix64", "smix64",
}
# Types whose involvement in the expression establishes provenance.
SOURCING_TYPES = {"SeedMixer", "SplitMix64"}

RNG_TYPE = "Xoshiro256ss"

# The RNG primitives themselves are exempt (they *are* the source).
EXEMPT_FILES = ("src/util/rng.hpp", "src/util/rng.cpp")

# Identifiers that are casts/types, not value sources.
NON_VALUE_IDS = {
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "std", "uint64_t", "uint32_t", "uint16_t", "uint8_t", "int64_t",
    "int32_t", "size_t", "int", "unsigned", "long", "short", "double",
    "float", "bool", "char", "auto", "uint_fast64_t", "nullptr", "true",
    "false", "min", "max", "util", "hash", "bfce",
}

SEEDY_NAME_HINTS = ("seed", "base", "master", "salt", "mix", "stream", "rng")

_MAX_DEPTH = 8


def _expr_tokens(repo_file, lo: int, hi: int):
    return repo_file.tokens[lo:hi]


class _Tracer:
    def __init__(self, repo: Repo):
        self.repo = repo
        self.problems: list[Finding] = []

    def trace(self, fm, fn: Function | None, lo: int, hi: int,
              depth: int, visited: set) -> bool:
        """True when the expression tokens [lo, hi) of `fm` reach a
        sanctioned seed source; records problems at blame sites when a
        concrete bad producer is found."""
        if depth <= 0:
            return True  # depth-capped: assume ok rather than false-alarm
        toks = fm.tokens
        i = lo
        saw_value_id = False
        sources: list[tuple[str, int]] = []  # (identifier-or-path, tok)
        while i < hi:
            t = toks[i]
            if t.kind != ID:
                i += 1
                continue
            spelled, j = read_qualified(toks, i)
            leaf = spelled.split("::")[-1]
            # Sanctioned sourcing call / type anywhere in the expression.
            if leaf in SOURCING_CALLS or leaf in SOURCING_TYPES:
                return True
            if leaf in NON_VALUE_IDS or spelled in NON_VALUE_IDS:
                i = j
                continue
            # Member path a.b / a->b: record the full path.
            path = [leaf]
            while j < hi and toks[j].kind == OP and toks[j].text in {".",
                                                                     "->"}:
                if j + 1 < hi and toks[j + 1].kind == ID:
                    nxt, j2 = read_qualified(toks, j + 1)
                    path.append(nxt.split("::")[-1])
                    j = j2
                else:
                    break
            saw_value_id = True
            is_call = j < hi and toks[j].kind == OP and toks[j].text == "("
            sources.append((".".join(path) + ("()" if is_call else ""),
                            i))
            i = j

        if not saw_value_id:
            return False  # literals/operators only: a constant seed

        # Any single derived contributor sanctifies the mix.
        for src, tok_i in sources:
            if self._source_ok(fm, fn, src, tok_i, depth, visited):
                return True
        return False

    def _source_ok(self, fm, fn: Function | None, src: str, tok_i: int,
                   depth: int, visited: set) -> bool:
        is_call = src.endswith("()")
        name = src.removesuffix("()")
        leaf = name.split(".")[-1]

        if is_call:
            # A call to a repo function counts as derived iff that
            # function's body itself reaches a sanctioned source.
            for callee in self.repo.functions_named(leaf):
                key = ("fnret", callee.qname)
                if key in visited:
                    continue
                visited.add(key)
                if self._body_sources(callee):
                    return True
            # `.value()` on a SeedMixer-typed receiver.
            if leaf == "value":
                recv = name.rsplit(".", 1)[0] if "." in name else ""
                if fn is not None and self._var_type(fn, recv) and \
                        "SeedMixer" in self._var_type(fn, recv):
                    return True
            return False

        if fn is None:
            return False

        if "." not in name:
            # Local?
            loc = fn.locals.get(name)
            if loc is not None:
                if loc.init is None:
                    return False
                key = ("local", fn.qname, name)
                if key in visited:
                    return False
                visited.add(key)
                return self.trace(fm, fn, loc.init[0], loc.init[1],
                                  depth - 1, visited)
            # Parameter? -> obligation moves to every in-repo call site.
            for idx, prm in enumerate(fn.params):
                if prm.name == name:
                    return self._param_ok(fn, idx, prm.name, depth, visited)
            # Member of the owning class?
            member_ok = self._field_ok(name, fn, depth, visited)
            if member_ok is not None:
                return member_ok
            # File-scope constant?
            for g in fm.globals:
                if g.name == name and g.init is not None:
                    return self.trace(fm, None, g.init[0], g.init[1],
                                      depth - 1, visited)
            return True  # unresolvable: stay conservative, no false alarm

        # Field path `x.y` (or deeper): provenance of the final field.
        field_name = name.split(".")[-1]
        ok = self._field_ok(field_name, fn, depth, visited)
        return True if ok is None else ok

    def _field_ok(self, field_name: str, fn: Function, depth: int,
                  visited: set) -> bool | None:
        """Checks every in-repo write of `.field_name` (assignments and
        ctor init-lists). None = no writes found (unknown, stay quiet);
        otherwise True iff at least one write is derived AND no write is
        a bare constant (bad writes are blamed at their own site)."""
        key = ("field", field_name)
        if key in visited:
            return True
        visited.add(key)
        writes = self.repo.field_assigns(field_name)
        init_writes = []
        for wfn in self.repo.functions():
            if not wfn.is_ctor:
                continue
            for mname, rng_ in wfn.init_list:
                if mname == field_name:
                    init_writes.append((self.repo.files[wfn.rel], wfn, rng_))
        if not writes and not init_writes:
            return None
        any_ok = False
        for wfm, wfn, a in writes:
            lo, hi = a.rhs
            if self.trace(wfm, wfn, lo, hi, depth - 1, set(visited)):
                any_ok = True
            elif self._is_constant_expr(wfm, lo, hi):
                # Writing a literal into a seed-carrying field is only a
                # finding when the field actually feeds an RNG — the
                # caller (check_* below) decides; record as a problem.
                self.problems.append(Finding(
                    rule="rng-provenance", rel=wfm.rel, line=a.line, col=1,
                    message=(f"'{a.lhs}' feeds an RNG seed/counter base "
                             "but is assigned a bare constant here; "
                             "derive it via util::SeedMixer / "
                             "util::derive_seed")))
        for wfm, wfn, (lo, hi) in init_writes:
            if self.trace(wfm, wfn, lo, hi, depth - 1, set(visited)):
                any_ok = True
        return any_ok

    def _param_ok(self, fn: Function, idx: int, pname: str, depth: int,
                  visited: set) -> bool:
        key = ("param", fn.qname, pname)
        if key in visited:
            return True
        visited.add(key)
        callers = []
        for cfn in self.repo.functions():
            for call in cfn.calls:
                if call.name == fn.name and idx < len(call.args):
                    callers.append((self.repo.files[cfn.rel], cfn, call))
        if not callers:
            return True  # public API: the spec carries the seed
        all_bad_sites = []
        any_ok = False
        for cfm, cfn, call in callers:
            lo, hi = call.args[idx]
            if self.trace(cfm, cfn, lo, hi, depth - 1, set(visited)):
                any_ok = True
            else:
                all_bad_sites.append((cfm, cfn, call, lo, hi))
        for cfm, cfn, call, lo, hi in all_bad_sites:
            if self._is_constant_expr(cfm, lo, hi):
                self.problems.append(Finding(
                    rule="rng-provenance", rel=cfm.rel, line=call.line,
                    col=1,
                    message=(f"call to '{fn.name}' passes a bare constant "
                             f"into seed parameter '{pname}'; derive the "
                             "value via util::SeedMixer / "
                             "util::derive_seed")))
        return any_ok

    def _body_sources(self, fn: Function) -> bool:
        fm = self.repo.files.get(fn.rel)
        if fm is None:
            return False
        lo, hi = fn.body
        for t in fm.tokens[lo:hi]:
            if t.kind == ID and (t.text in SOURCING_CALLS
                                 or t.text in SOURCING_TYPES):
                return True
        return False

    def _var_type(self, fn: Function, name: str) -> str:
        loc = fn.locals.get(name)
        if loc is not None:
            return loc.type_text
        for prm in fn.params:
            if prm.name == name:
                return prm.type_text
        if fn.cls:
            for cls in self.repo.class_named(fn.cls):
                m = cls.members.get(name)
                if m is not None:
                    return m.type_text
        return ""

    @staticmethod
    def _is_constant_expr(fm, lo: int, hi: int) -> bool:
        return all(t.kind in (NUM, OP) or t.text in NON_VALUE_IDS
                   for t in fm.tokens[lo:hi]) and any(
                       t.kind == NUM for t in fm.tokens[lo:hi])


def run(repo: Repo, scanned: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    findings.extend(_provenance(repo, scanned))
    findings.extend(_purity(repo, scanned))
    return findings


def _provenance(repo: Repo, scanned: set[str]) -> list[Finding]:
    out: list[Finding] = []
    for fm in repo.files.values():
        if fm.rel not in scanned or fm.rel.endswith(EXEMPT_FILES):
            continue
        for fn in fm.functions:
            tracer = _Tracer(repo)
            # Xoshiro locals.
            for loc in fn.locals.values():
                if RNG_TYPE not in loc.type_text or loc.init is None:
                    continue
                if not tracer.trace(fm, fn, loc.init[0], loc.init[1],
                                    _MAX_DEPTH, set()):
                    out.append(Finding(
                        rule="rng-provenance", rel=fm.rel,
                        line=fm.tokens[loc.tok].line, col=1,
                        message=(f"Xoshiro256ss '{loc.name}' is seeded by "
                                 "an expression with no derivation from "
                                 "util::SeedMixer / util::derive_seed "
                                 "along the call graph")))
            # Xoshiro members seeded in ctor init-lists.
            if fn.is_ctor and fn.cls:
                member_types = {}
                for cls in repo.class_named(fn.cls):
                    member_types.update(
                        {n: m.type_text for n, m in cls.members.items()})
                for mname, (lo, hi) in fn.init_list:
                    if RNG_TYPE not in member_types.get(mname, ""):
                        continue
                    if not tracer.trace(fm, fn, lo, hi, _MAX_DEPTH, set()):
                        out.append(Finding(
                            rule="rng-provenance", rel=fm.rel, line=fn.line,
                            col=1,
                            message=(f"member '{mname}' is seeded in the "
                                     "init-list by an expression with no "
                                     "derivation from util::SeedMixer / "
                                     "util::derive_seed")))
            # splitmix_at counter bases.
            for call in fn.calls:
                if call.name != "splitmix_at" or not call.args:
                    continue
                lo, hi = call.args[0]
                if not tracer.trace(fm, fn, lo, hi, _MAX_DEPTH, set()):
                    out.append(Finding(
                        rule="rng-provenance", rel=fm.rel, line=call.line,
                        col=1,
                        message=("splitmix_at counter base has no "
                                 "derivation from util::SeedMixer / "
                                 "util::derive_seed along the call "
                                 "graph")))
            out.extend(tracer.problems)
    return out


DRAW_METHODS = {"uniform", "below", "between", "bernoulli"}


def _purity(repo: Repo, scanned: set[str]) -> list[Finding]:
    # Mutable namespace-scope variables across the scanned tree.
    globals_mut: dict[str, str] = {}
    for fm in repo.files.values():
        if fm.rel not in scanned:
            continue
        for g in fm.globals:
            base = g.type_text.split("::")[-1].split("<")[0].strip()
            if g.is_const or base in SYNC_TYPES:
                continue
            globals_mut[g.name] = fm.rel

    out: list[Finding] = []
    for fm in repo.files.values():
        if fm.rel not in scanned or fm.rel.endswith(EXEMPT_FILES):
            continue
        for fn in fm.functions:
            draws = _draw_sites(repo, fm, fn)
            if not draws:
                continue
            state = _mutable_state_uses(fm, fn, globals_mut)
            for line, what in state:
                out.append(Finding(
                    rule="rng-purity", rel=fm.rel, line=line, col=1,
                    message=(f"'{fn.qname}' draws randomness (line "
                             f"{draws[0]}) and also touches mutable "
                             f"{what}; estimates must be pure functions "
                             "of their spec")))
    return out


def _draw_sites(repo: Repo, fm, fn: Function) -> list[int]:
    rng_vars = set()
    for loc in list(fn.locals.values()) + fn.params:
        if RNG_TYPE in loc.type_text:
            rng_vars.add(loc.name)
    if fn.cls:
        for cls in repo.class_named(fn.cls):
            for n, m in cls.members.items():
                if RNG_TYPE in m.type_text:
                    rng_vars.add(n)
    sites = []
    for call in fn.calls:
        if call.name == "draw_binomial":
            sites.append(call.line)
        elif call.name in rng_vars and call.recv is None:
            sites.append(call.line)  # rng()
        elif call.recv in rng_vars and call.name in DRAW_METHODS:
            sites.append(call.line)
    return sorted(sites)


def _mutable_state_uses(fm, fn: Function,
                        globals_mut: dict[str, str]) -> list[tuple[int, str]]:
    uses: list[tuple[int, str]] = []
    for st in fn.statics:
        base = st.type_text.split("::")[-1].split("<")[0].strip()
        if st.is_const or base in SYNC_TYPES:
            continue
        uses.append((fm.tokens[st.tok].line,
                     f"function-local static '{st.name}'"))
    if globals_mut:
        lo, hi = fn.body
        local_names = set(fn.locals) | {p.name for p in fn.params}
        for t in fm.tokens[lo:hi]:
            if t.kind == ID and t.text in globals_mut and \
                    t.text not in local_names:
                uses.append((t.line, f"namespace-scope state '{t.text}' "
                                     f"({globals_mut[t.text]})"))
                break
    return uses
