"""Declaration / call-graph model for the bfce semantic analyzer.

Built on the token stream from cpptok, this module recovers the program
shape the rules reason over, per translation unit and then merged into a
repo-wide index:

  * function definitions with qualified names, parameters, body extents
    and (for constructors) member-init lists;
  * classes with their member variables;
  * per-function locals (name -> declared type + initializer tokens),
    call sites (with receiver and argument extents), assignments
    (including `x.field = ...` field writes), lambdas (with the enclosing
    dispatch call, e.g. `parallel_for`, when they are passed to one) and
    RAII lock-guard sites with held-interval tracking that honours
    manual `guard.unlock()` / `guard.lock()`;
  * namespace-scope mutable variables (the purity rule's "globals").

The recovery is heuristic — this is not a full C++ front-end — but it is
token-accurate (strings/comments can neither trip nor appease anything)
and every behaviour the rules depend on is pinned by the fixture corpus
under tests/analyzer/.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import cpptok
from .cpptok import ID, NUM, OP, PP, Token

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "new", "delete", "throw", "try",
    "catch", "sizeof", "alignof", "static_assert", "using", "typedef",
    "typename", "template", "public", "private", "protected", "operator",
    "co_await", "co_yield", "co_return", "friend", "explicit", "virtual",
    "enum", "namespace", "class", "struct", "union", "this", "nullptr",
    "true", "false", "assert",
}

TYPE_PREFIX = {
    "const", "constexpr", "static", "mutable", "volatile", "inline",
    "thread_local", "unsigned", "signed", "long", "short", "register",
}

GUARD_TYPES = {"lock_guard", "unique_lock", "shared_lock", "scoped_lock"}
MUTEX_TYPES = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "shared_timed_mutex", "recursive_timed_mutex",
}
SYNC_TYPES = MUTEX_TYPES | {
    "condition_variable", "condition_variable_any", "once_flag", "atomic",
    "atomic_flag",
}


@dataclass
class Local:
    name: str
    type_text: str
    tok: int  # index of the declared name token
    init: tuple[int, int] | None  # [lo, hi) token range of the initializer
    is_static: bool = False
    is_const: bool = False


@dataclass
class Call:
    name: str  # last name component, e.g. "parallel_for"
    qual: str  # full spelled callee, e.g. "util::parallel_for"
    recv: str | None  # receiver expression for a.b() / a->b()
    tok: int  # index of the name token
    line: int
    args: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class Assign:
    lhs: str  # spelled lhs path, e.g. "fr.base" or "state_"
    tok: int
    line: int
    rhs: tuple[int, int] = (0, 0)


@dataclass
class Lambda:
    body: tuple[int, int]  # [open-brace, close-brace] token indices
    intro_tok: int  # index of the '[' token
    params: list[str] = field(default_factory=list)
    dispatch: str | None = None  # callee name when passed to a dispatcher


@dataclass
class Guard:
    var: str
    kind: str  # lock_guard / unique_lock / shared_lock / scoped_lock
    mutex_expr: str
    tok: int
    line: int
    block_end: int  # token index of the enclosing block's '}'
    held: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class Function:
    rel: str  # repo-relative file of the definition
    qname: str  # e.g. "bfce::service::EstimationService::worker_loop"
    name: str  # last component
    cls: str | None  # owning class name (unqualified) or None
    line: int
    params: list[Local] = field(default_factory=list)
    body: tuple[int, int] = (0, 0)
    locals: dict[str, Local] = field(default_factory=dict)
    statics: list[Local] = field(default_factory=list)
    calls: list[Call] = field(default_factory=list)
    assigns: list[Assign] = field(default_factory=list)
    lambdas: list[Lambda] = field(default_factory=list)
    guards: list[Guard] = field(default_factory=list)
    init_list: list[tuple[str, tuple[int, int]]] = field(default_factory=list)
    is_ctor: bool = False


@dataclass
class ClassInfo:
    name: str
    qname: str
    rel: str
    members: dict[str, Local] = field(default_factory=dict)


@dataclass
class FileModel:
    rel: str
    tokens: list[Token]
    comments: list[cpptok.Comment]
    functions: list[Function] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    globals: list[Local] = field(default_factory=list)
    includes: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Helpers over token lists.


def match_braces(tokens: list[Token]) -> dict[int, int]:
    """Map from every '(', '{', '[' token index to its matching closer."""
    match: dict[int, int] = {}
    stack: list[int] = []
    pairs = {"(": ")", "{": "}", "[": "]"}
    closers = {")", "}", "]"}
    for i, t in enumerate(tokens):
        if t.kind != OP:
            continue
        if t.text in pairs:
            stack.append(i)
        elif t.text in closers:
            while stack:
                j = stack.pop()
                if pairs[tokens[j].text] == t.text:
                    match[j] = i
                    break
                # Unbalanced opener (rare macro soup): close it here too.
                match[j] = i
    while stack:  # unterminated at EOF
        match[stack.pop()] = len(tokens) - 1
    return match


def read_qualified(tokens: list[Token], i: int) -> tuple[str, int]:
    """Reads `id(::id)*` starting at i; returns (spelled, next index).

    Skips template argument lists between components (`Foo<Bar>::baz`).
    """
    parts = [tokens[i].text]
    i += 1
    while i < len(tokens):
        if tokens[i].kind == OP and tokens[i].text == "<":
            j = skip_template_args(tokens, i)
            if j is None:
                break
            i = j
            continue
        if (tokens[i].kind == OP and tokens[i].text == "::"
                and i + 1 < len(tokens) and tokens[i + 1].kind == ID):
            parts.append(tokens[i + 1].text)
            i += 2
            continue
        break
    return "::".join(parts), i


def skip_template_args(tokens: list[Token], i: int) -> int | None:
    """If tokens[i] is '<' opening a plausible template-argument list,
    returns the index just past the matching '>'; otherwise None."""
    depth = 0
    j = i
    limit = min(len(tokens), i + 64)  # template args are short in practice
    while j < limit:
        t = tokens[j]
        if t.kind != OP:
            j += 1
            continue
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t.text == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t.text in {";", "{", "}"} or t.text in {"&&", "||"}:
            return None  # comparison, not template args
        j += 1
    return None


def text_of(tokens: list[Token], lo: int, hi: int) -> str:
    return " ".join(t.text for t in tokens[lo:hi])


# ---------------------------------------------------------------------------
# File parsing.


class _Parser:
    def __init__(self, rel: str, tokens: list[Token],
                 comments: list[cpptok.Comment]):
        self.fm = FileModel(rel=rel, tokens=tokens, comments=comments)
        self.tokens = tokens
        self.match = match_braces(tokens)
        for t in tokens:
            if t.kind == PP and t.text.lstrip("# \t").startswith("include"):
                body = t.text.split("include", 1)[1].strip()
                if body.startswith('"') and body.endswith('"'):
                    self.fm.includes.append(body[1:-1])

    # -- top level ----------------------------------------------------------

    def parse(self) -> FileModel:
        self.scan_scope(0, len(self.tokens), ns=[], cls=None)
        return self.fm

    def scan_scope(self, lo: int, hi: int, ns: list[str],
                   cls: ClassInfo | None) -> None:
        toks = self.tokens
        i = lo
        while i < hi:
            t = toks[i]
            if t.kind == PP:
                i += 1
                continue
            if t.kind == ID and t.text == "namespace":
                j = i + 1
                name_parts = []
                while j < hi and toks[j].kind == ID:
                    name_parts.append(toks[j].text)
                    j += 1
                    if j < hi and toks[j].kind == OP and toks[j].text == "::":
                        j += 1
                        continue
                    break
                if j < hi and toks[j].kind == OP and toks[j].text == "{":
                    end = self.match.get(j, hi)
                    self.scan_scope(j + 1, end, ns + name_parts, cls)
                    i = end + 1
                    continue
                i = j + 1
                continue
            if t.kind == ID and t.text in {"class", "struct"}:
                i = self.scan_class(i, hi, ns, cls)
                continue
            if t.kind == ID and t.text == "enum":
                i = self.skip_past_braces_or_semi(i, hi)
                continue
            if t.kind == ID and t.text == "template":
                j = i + 1
                if j < hi and toks[j].kind == OP and toks[j].text == "<":
                    skipped = skip_template_args(toks, j)
                    i = skipped if skipped is not None else j + 1
                else:
                    i = j
                continue
            if t.kind == ID and t.text in {"using", "typedef"}:
                i = self.skip_to_semi(i, hi)
                continue
            if t.kind == ID and t.text in {"extern", "friend"}:
                i += 1
                continue
            if t.kind == ID or (t.kind == OP and t.text == "~"):
                i = self.scan_declaration(i, hi, ns, cls)
                continue
            i += 1

    def skip_to_semi(self, i: int, hi: int) -> int:
        toks = self.tokens
        while i < hi:
            if toks[i].kind == OP:
                if toks[i].text == ";":
                    return i + 1
                if toks[i].text in "({[":
                    i = self.match.get(i, i) + 1
                    continue
            i += 1
        return hi

    def skip_past_braces_or_semi(self, i: int, hi: int) -> int:
        toks = self.tokens
        while i < hi:
            if toks[i].kind == OP:
                if toks[i].text == ";":
                    return i + 1
                if toks[i].text == "{":
                    end = self.match.get(i, hi)
                    # enum class X { ... };
                    if end + 1 < hi and toks[end + 1].text == ";":
                        return end + 2
                    return end + 1
                if toks[i].text in "([":
                    i = self.match.get(i, i) + 1
                    continue
            i += 1
        return hi

    def scan_class(self, i: int, hi: int, ns: list[str],
                   outer: ClassInfo | None) -> int:
        toks = self.tokens
        j = i + 1
        while j < hi and toks[j].kind == OP and toks[j].text == "[":
            j = self.match.get(j, j) + 1  # attributes
        if j >= hi or toks[j].kind != ID:
            return i + 1
        name = toks[j].text
        j += 1
        # Skip 'final' and a base-clause up to '{' / ';' / '('.
        while j < hi and not (toks[j].kind == OP
                              and toks[j].text in {"{", ";", "("}):
            if toks[j].kind == OP and toks[j].text == "<":
                skipped = skip_template_args(toks, j)
                j = skipped if skipped is not None else j + 1
                continue
            j += 1
        if j >= hi or toks[j].text != "{":
            return self.skip_to_semi(i, hi)  # forward declaration / variable
        end = self.match.get(j, hi)
        qname = "::".join(ns + ([outer.name] if outer else []) + [name])
        info = ClassInfo(name=name, qname=qname, rel=self.fm.rel)
        self.fm.classes[name] = info
        self.scan_scope(j + 1, end, ns, info)
        return self.skip_past_braces_or_semi(end, hi) if end < hi else hi

    # -- declarations (functions, members, globals) -------------------------

    def scan_declaration(self, i: int, hi: int, ns: list[str],
                         cls: ClassInfo | None) -> int:
        """At namespace or class scope, starting on an identifier: decide
        between a function definition, a function declaration, and a
        variable/member declaration; record accordingly."""
        toks = self.tokens
        start = i
        last_name: str | None = None
        last_name_tok = -1
        qual_before_name = ""
        seen_ids: list[str] = []
        j = i
        while j < hi:
            t = toks[j]
            if t.kind == ID and t.text == "operator":
                # operator()/operator== etc.: consume the symbol.
                k = j + 1
                while k < hi and toks[k].kind == OP and toks[k].text != "(":
                    k += 1
                last_name = "operator" + text_of(toks, j + 1, k)
                last_name_tok = j
                j = k
                continue
            if t.kind == ID and t.text not in TYPE_PREFIX:
                spelled, nxt = read_qualified(toks, j)
                seen_ids.append(spelled)
                last_name = spelled.split("::")[-1]
                qual_before_name = spelled
                last_name_tok = j
                j = nxt
                continue
            if t.kind == OP and t.text == "(" and last_name is not None:
                close = self.match.get(j, hi)
                after = close + 1
                # Skip cv/ref/noexcept/override/trailing-return up to a
                # terminator that classifies the declaration.
                k = after
                while k < hi:
                    tk = toks[k]
                    if tk.kind == OP and tk.text in {"{", ";", ":", ","}:
                        break
                    if tk.kind == OP and tk.text == "=":
                        break
                    if tk.kind == OP and tk.text == "(":
                        k = self.match.get(k, k) + 1
                        continue
                    if tk.kind == OP and tk.text == "->":
                        k += 1
                        continue
                    k += 1
                if k < hi and toks[k].kind == OP and toks[k].text in {"{", ":"}:
                    return self.record_function(start, last_name_tok, j,
                                               close, k, ns, cls, hi)
                if (k < hi and toks[k].kind == OP and toks[k].text == "="
                        and k + 1 < hi
                        and toks[k + 1].text in {"default", "delete", "0"}):
                    return self.skip_to_semi(k, hi)
                # `Type name(args);` at namespace/class scope is a
                # function declaration (most-vexing-parse rule), never a
                # variable — record nothing.
                return self.skip_to_semi(close, hi)
            if t.kind == OP and t.text in {"=", "{", ";"} and last_name:
                # Variable / member declaration.
                init: tuple[int, int] | None = None
                if t.text == "=":
                    end = self.skip_to_semi(j, hi)
                    init = (j + 1, end - 1)
                    if len(seen_ids) >= 2:
                        self.record_variable(last_name, last_name_tok,
                                             seen_ids[:-1], init, cls)
                    return end
                if t.text == "{":
                    close = self.match.get(j, hi)
                    if len(seen_ids) >= 2:
                        self.record_variable(last_name, last_name_tok,
                                             seen_ids[:-1], (j + 1, close),
                                             cls)
                    return self.skip_to_semi(close, hi)
                if len(seen_ids) >= 2:
                    self.record_variable(last_name, last_name_tok,
                                         seen_ids[:-1], None, cls)
                return j + 1
            if t.kind == OP and t.text in {"&", "*", "~", "[", "]", "::",
                                           "<", ">", ">>", ","}:
                if t.text == "<":
                    skipped = skip_template_args(toks, j)
                    if skipped is not None:
                        j = skipped
                        continue
                if t.text == "~":
                    j += 1
                    continue
                j += 1
                continue
            if t.kind == ID:
                j += 1
                continue
            return j + 1
        return hi

    def record_variable(self, name: str, name_tok: int, type_ids: list[str],
                        init: tuple[int, int] | None,
                        cls: ClassInfo | None) -> None:
        type_text = " ".join(type_ids)
        local = Local(name=name, type_text=type_text, tok=name_tok, init=init)
        if cls is not None:
            cls.members[name] = local
        else:
            prev = self.tokens[max(0, name_tok - 8):name_tok]
            local.is_const = any(
                p.kind == ID and p.text in {"const", "constexpr"}
                for p in prev)
            self.fm.globals.append(local)

    def record_function(self, start: int, name_tok: int, paren: int,
                        close: int, body_or_colon: int, ns: list[str],
                        cls: ClassInfo | None, hi: int) -> int:
        toks = self.tokens
        spelled, _ = read_qualified(toks, name_tok)
        parts = spelled.split("::")
        name = parts[-1]
        owner = cls.name if cls else (parts[-2] if len(parts) >= 2 else None)
        if toks[name_tok].text == "operator" or name.startswith("operator"):
            name = "operator" + name.removeprefix("operator")
        qname = "::".join(ns + ([owner] if owner and owner not in ns else [])
                          + [name])
        fn = Function(rel=self.fm.rel, qname=qname, name=name, cls=owner,
                      line=toks[name_tok].line,
                      is_ctor=(owner is not None and name == owner))
        fn.params = self.parse_params(paren + 1, close)

        k = body_or_colon
        if toks[k].text == ":":
            k = self.parse_init_list(fn, k + 1, hi)
        if k < hi and toks[k].kind == OP and toks[k].text == "{":
            body_end = self.match.get(k, hi)
            fn.body = (k, body_end)
            self.fm.functions.append(fn)
            parse_body(self, fn)
            return body_end + 1
        self.fm.functions.append(fn)
        return k + 1

    def parse_params(self, lo: int, hi: int) -> list[Local]:
        toks = self.tokens
        params: list[Local] = []
        i = lo
        seg_start = lo
        segs: list[tuple[int, int]] = []
        while i < hi:
            t = toks[i]
            if t.kind == OP and t.text in "([{":
                i = self.match.get(i, i) + 1
                continue
            if t.kind == OP and t.text == "<":
                skipped = skip_template_args(toks, i)
                if skipped is not None:
                    i = skipped
                    continue
            if t.kind == OP and t.text == ",":
                segs.append((seg_start, i))
                seg_start = i + 1
            i += 1
        if seg_start < hi:
            segs.append((seg_start, hi))
        for lo_s, hi_s in segs:
            name = None
            name_tok = lo_s
            type_ids = []
            j = lo_s
            while j < hi_s:
                t = toks[j]
                if t.kind == OP and t.text == "=":
                    break  # default argument
                if t.kind == ID and t.text not in TYPE_PREFIX:
                    spelled, j2 = read_qualified(toks, j)
                    name = spelled.split("::")[-1]
                    name_tok = j
                    j = j2
                    continue
                j += 1
            if name is None:
                continue
            type_text = text_of(toks, lo_s, name_tok)
            params.append(Local(name=name, type_text=type_text,
                                tok=name_tok, init=None))
        return params

    def parse_init_list(self, fn: Function, i: int, hi: int) -> int:
        """Parses `member(expr), member{expr}, base(...)` up to the body
        '{'; returns the index of that '{'."""
        toks = self.tokens
        while i < hi:
            t = toks[i]
            if t.kind == OP and t.text == "{":
                # Either brace-init of a member (id precedes) or the body.
                prev = toks[i - 1] if i > 0 else None
                if prev is not None and prev.kind == ID:
                    close = self.match.get(i, hi)
                    fn.init_list.append((prev.text, (i + 1, close)))
                    i = close + 1
                    continue
                return i
            if t.kind == ID:
                spelled, j = read_qualified(toks, i)
                if j < hi and toks[j].kind == OP and toks[j].text == "(":
                    close = self.match.get(j, hi)
                    fn.init_list.append((spelled.split("::")[-1],
                                         (j + 1, close)))
                    i = close + 1
                    continue
                i = j
                continue
            i += 1
        return i


# ---------------------------------------------------------------------------
# Function-body parsing.


def parse_body(p: _Parser, fn: Function) -> None:
    toks = p.tokens
    lo, hi = fn.body
    block_stack: list[int] = [lo]
    i = lo + 1
    while i < hi:
        t = toks[i]
        if t.kind == OP and t.text == "{":
            block_stack.append(i)
            i += 1
            continue
        if t.kind == OP and t.text == "}":
            if len(block_stack) > 1:
                block_stack.pop()
            i += 1
            continue
        # Lambdas: '[' that is not a subscript and not an attribute.
        if t.kind == OP and t.text == "[":
            prev = toks[i - 1]
            is_subscript = (prev.kind in (ID, NUM)
                            or (prev.kind == OP and prev.text in {")", "]"}))
            close = p.match.get(i, i)
            nxt = toks[close + 1] if close + 1 < hi else None
            if (not is_subscript and nxt is not None and nxt.kind == OP
                    and nxt.text in {"(", "{"}):
                lam = Lambda(body=(0, 0), intro_tok=i)
                j = close + 1
                if nxt.text == "(":
                    pclose = p.match.get(j, j)
                    lam.params = [pp.name for pp in p.parse_params(j + 1,
                                                                   pclose)]
                    j = pclose + 1
                while j < hi and not (toks[j].kind == OP
                                      and toks[j].text == "{"):
                    if toks[j].kind == OP and toks[j].text == "(":
                        j = p.match.get(j, j) + 1
                        continue
                    if toks[j].kind == OP and toks[j].text == ";":
                        break
                    j += 1
                if j < hi and toks[j].text == "{":
                    lam.body = (j, p.match.get(j, hi))
                    fn.lambdas.append(lam)
            i += 1
            continue
        if t.kind == ID and t.text == "static":
            i = scan_static_local(p, fn, i, hi)
            continue
        if t.kind == ID and t.text not in KEYWORDS:
            i = scan_statement_head(p, fn, i, hi, block_stack)
            continue
        i += 1

    attach_dispatch_lambdas(fn)
    compute_guard_intervals(p, fn)


def scan_static_local(p: _Parser, fn: Function, i: int, hi: int) -> int:
    toks = p.tokens
    j = i + 1
    quals = []
    while j < hi and toks[j].kind == ID and toks[j].text in TYPE_PREFIX:
        quals.append(toks[j].text)
        j += 1
    type_ids = []
    name = None
    name_tok = j
    while j < hi:
        t = toks[j]
        if t.kind == ID and t.text not in TYPE_PREFIX:
            spelled, j2 = read_qualified(toks, j)
            if name is not None:
                type_ids.append(name)
            name = spelled.split("::")[-1]
            name_tok = j
            j = j2
            continue
        if t.kind == OP and t.text in {"&", "*"}:
            j += 1
            continue
        break
    if name is not None:
        loc = Local(name=name, type_text=" ".join(type_ids), tok=name_tok,
                    init=None, is_static=True,
                    is_const=("const" in quals or "constexpr" in quals))
        fn.statics.append(loc)
        fn.locals[name] = loc
    return p.skip_to_semi(i, hi)


def scan_statement_head(p: _Parser, fn: Function, i: int, hi: int,
                        block_stack: list[int]) -> int:
    """From an identifier inside a body: records a local declaration, a
    call, or an assignment, and returns the next scan index (which never
    jumps past nested interesting constructs — it advances minimally)."""
    toks = p.tokens
    spelled, j = read_qualified(toks, i)
    name = spelled.split("::")[-1]

    # Receiver chains: a.b.c( / a->b( — walk the member path.
    path = [spelled]
    while j < hi and toks[j].kind == OP and toks[j].text in {".", "->"}:
        if j + 1 < hi and toks[j + 1].kind == ID:
            nxt_spelled, j2 = read_qualified(toks, j + 1)
            path.append(nxt_spelled)
            j = j2
        else:
            j += 1
            break

    nxt = toks[j] if j < hi else None
    if nxt is None:
        return j

    if nxt.kind == OP and nxt.text == "(":
        close = p.match.get(j, j)
        callee = path[-1]
        recv = ".".join(path[:-1]) if len(path) > 1 else None
        call = Call(name=callee.split("::")[-1], qual=callee, recv=recv,
                    tok=i, line=toks[i].line,
                    args=split_args(p, j + 1, close))
        fn.calls.append(call)
        return j + 1  # continue scanning inside the arguments

    if nxt.kind == OP and nxt.text == "=":
        end = p.skip_to_semi(j, hi)
        fn.assigns.append(Assign(lhs=".".join(path), tok=i,
                                 line=toks[i].line, rhs=(j + 1, end - 1)))
        return j + 1

    # Two consecutive identifiers => declaration `Type name ...`.
    if (len(path) == 1 and nxt.kind == ID and nxt.text not in KEYWORDS
            and spelled not in KEYWORDS):
        dname_spelled, j2 = read_qualified(toks, j)
        dname = dname_spelled.split("::")[-1]
        after = toks[j2] if j2 < hi else None
        # `auto t = ns::Clock::now()` — a *qualified* name followed by
        # '(' is a call, never a declarator.
        if ("::" in dname_spelled and after is not None
                and after.kind == OP and after.text == "("):
            close = p.match.get(j2, j2)
            fn.calls.append(Call(name=dname, qual=dname_spelled, recv=None,
                                 tok=j, line=toks[j].line,
                                 args=split_args(p, j2 + 1, close)))
            return j2 + 1
        if after is not None and after.kind == OP and after.text in \
                {"=", "(", "{", ";", ":", ")"}:
            init: tuple[int, int] | None = None
            if after.text == "=":
                end = p.skip_to_semi(j2, hi)
                init = (j2 + 1, end - 1)
            elif after.text in {"(", "{"}:
                close = p.match.get(j2, j2)
                init = (j2 + 1, close)
            elif after.text == ":":  # range-for binding
                end = p.skip_to_semi(j2, hi)
                init = (j2 + 1, end - 1)
            loc = Local(name=dname, type_text=spelled, tok=j, init=init)
            fn.locals[dname] = loc
            base = spelled.split("::")[-1]
            base = base.split("<")[0]
            if base in GUARD_TYPES:
                fn.guards.append(Guard(
                    var=dname, kind=base,
                    mutex_expr=text_of(toks, init[0], init[1]) if init else "",
                    tok=j, line=toks[j].line,
                    block_end=p.match.get(block_stack[-1], fn.body[1])))
            return j2 + 1
    return j


def split_args(p: _Parser, lo: int, hi: int) -> list[tuple[int, int]]:
    toks = p.tokens
    args: list[tuple[int, int]] = []
    i = lo
    seg = lo
    while i < hi:
        t = toks[i]
        if t.kind == OP and t.text in "([{":
            i = p.match.get(i, i) + 1
            continue
        if t.kind == OP and t.text == "<":
            skipped = skip_template_args(toks, i)
            if skipped is not None and skipped <= hi:
                i = skipped
                continue
        if t.kind == OP and t.text == ",":
            args.append((seg, i))
            seg = i + 1
        i += 1
    if seg < hi:
        args.append((seg, hi))
    return args


DISPATCH_NAMES = {"parallel_for"}


def attach_dispatch_lambdas(fn: Function) -> None:
    for call in fn.calls:
        if call.name not in DISPATCH_NAMES:
            continue
        for lam in fn.lambdas:
            for lo, hi in call.args:
                if lo <= lam.intro_tok < hi:
                    lam.dispatch = call.name
                    break


def compute_guard_intervals(p: _Parser, fn: Function) -> None:
    """Held intervals for each guard: [decl, block-end), split by manual
    guard.unlock()/guard.lock() calls in token order."""
    for g in fn.guards:
        events: list[tuple[int, str]] = []
        for call in fn.calls:
            if call.recv == g.var and call.name in {"lock", "unlock"}:
                if g.tok < call.tok < g.block_end:
                    events.append((call.tok, call.name))
        events.sort()
        held: list[tuple[int, int]] = []
        open_at: int | None = g.tok
        for pos, kind in events:
            if kind == "unlock" and open_at is not None:
                held.append((open_at, pos))
                open_at = None
            elif kind == "lock" and open_at is None:
                open_at = pos
        if open_at is not None:
            held.append((open_at, g.block_end))
        g.held = held


# ---------------------------------------------------------------------------
# Repo-wide index.


@dataclass
class Repo:
    files: dict[str, FileModel] = field(default_factory=dict)

    def functions(self) -> list[Function]:
        return [fn for fm in self.files.values() for fn in fm.functions]

    def functions_named(self, name: str) -> list[Function]:
        return [fn for fn in self.functions() if fn.name == name]

    def class_named(self, name: str) -> list[ClassInfo]:
        return [fm.classes[name] for fm in self.files.values()
                if name in fm.classes]

    def field_assigns(self, field_name: str) -> list[tuple[FileModel,
                                                           Function, Assign]]:
        out = []
        for fm in self.files.values():
            for fn in fm.functions:
                for a in fn.assigns:
                    if a.lhs.split(".")[-1].split("->")[-1] == field_name:
                        out.append((fm, fn, a))
        return out


def parse_file(rel: str, text: str) -> FileModel:
    tokens, comments = cpptok.tokenize(text)
    return _Parser(rel, tokens, comments).parse()
