"""Rule catalogue: every rule the analyzer can emit, with the metadata
SARIF and --list-rules render. docs/TOOLING.md carries the long-form
rationale and a good/bad example per rule."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuleInfo:
    id: str
    family: str
    short: str


RULES: list[RuleInfo] = [
    # -- RNG provenance (semantic) ----------------------------------------
    RuleInfo("rng-provenance", "rng-provenance",
             "every Xoshiro256ss seed and splitmix_at counter base must "
             "derive from util::SeedMixer / util::derive_seed along the "
             "call graph — literal or ambient seeds fork reproducibility"),
    RuleInfo("rng-purity", "rng-provenance",
             "a function that draws randomness must not read or write "
             "mutable namespace-scope / function-static state (hidden "
             "coupling breaks the pure-function-of-spec contract)"),
    # -- Lock discipline (semantic) ---------------------------------------
    RuleInfo("lock-order", "lock-discipline",
             "mutexes must be acquired in one global order; an inverted "
             "or self-nested acquisition is a latent deadlock"),
    RuleInfo("lock-across-dispatch", "lock-discipline",
             "no lock may be held across parallel_for / worker-pool "
             "dispatch: the workers contend or deadlock on it"),
    # -- Executor reentrancy (semantic) ------------------------------------
    RuleInfo("executor-reentrancy", "executor-reentrancy",
             "no blocking join (thread join, condition-variable wait, "
             "pool shutdown) inside a lambda dispatched onto the worker "
             "pool — it stalls or deadlocks the lane; nested "
             "parallel_for is the sanctioned nesting-safe path"),
    # -- Counter-addressed draw discipline (semantic) ----------------------
    RuleInfo("caller-draw-in-shard", "draw-discipline",
             "inside a sharded region, drawing from a caller-owned RNG "
             "stream makes results depend on shard count/schedule; use "
             "util::splitmix_at counters or a per-shard derived stream"),
    # -- Suppression hygiene ----------------------------------------------
    RuleInfo("suppression-unknown-rule", "suppression-hygiene",
             "lint:allow cites a rule id that does not exist"),
    RuleInfo("suppression-stale", "suppression-hygiene",
             "lint:allow cites a rule that no longer fires at the "
             "covered line — stale suppressions must be deleted"),
    RuleInfo("suppression-missing-owner", "suppression-hygiene",
             "lint:allow without owner=<who>"),
    RuleInfo("suppression-missing-expiry", "suppression-hygiene",
             "lint:allow without expires=<YYYY-MM-DD>"),
    RuleInfo("suppression-expired", "suppression-hygiene",
             "lint:allow whose expiry date has passed"),
    RuleInfo("suppression-missing-reason", "suppression-hygiene",
             "lint:allow without a justification"),
    # -- Ported determinism rules (tools/lint_determinism.py lineage) ------
    RuleInfo("random-device", "determinism",
             "std::random_device is ambient entropy; derive seeds with "
             "util::derive_seed / util::SeedMixer"),
    RuleInfo("libc-rand", "determinism",
             "rand()/srand() is hidden global state; use "
             "util::Xoshiro256ss with an explicit seed"),
    RuleInfo("wall-clock-seed", "determinism",
             "time(nullptr) seeds results with the wall clock"),
    RuleInfo("foreign-rng", "determinism",
             "the repo's only RNG family is util::Xoshiro256ss; a second "
             "engine forks reproducibility"),
    RuleInfo("clock-now", "determinism",
             "wall-clock reads outside the metrics/deadline allowlist "
             "leak the scheduler into results"),
    RuleInfo("unseeded-rng", "determinism",
             "a default-constructed / never-seeded Xoshiro256ss is a "
             "stealth constant seed (members seeded in every constructor "
             "init-list are recognised and exempt)"),
    RuleInfo("static-local-state", "determinism",
             "function-local mutable `static` state in estimator code "
             "breaks the fresh-instance-per-attempt contract"),
    RuleInfo("raw-thread", "determinism",
             "raw std::thread outside src/service and the src/util "
             "executor/parallel_for layer; route concurrency through "
             "the pool or util::parallel_for"),
]

RULE_IDS = {r.id for r in RULES}
BY_ID = {r.id: r for r in RULES}
