"""CLI entry point: `python3 tools/analyze [paths...]`.

Exit codes (stable, scripted against by tools/ci.sh and the fixture
runner):

    0  clean — no findings
    1  findings reported (including suppression-hygiene findings)
    2  usage or internal error
"""

from __future__ import annotations

import argparse
import datetime
import os
import sys

if __package__ in (None, ""):  # `python3 tools/analyze` (PEP 366)
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    import analyze  # noqa: F401  (registers the package)
    __package__ = "analyze"

from .catalog import RULES
from .engine import render_human, run_analysis
from .sarif import write_sarif


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="tools/analyze",
        description="bfce semantic invariant analyzer")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to scan "
                         "(default: <root>/src via compile_commands.json "
                         "when available)")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--sarif", metavar="OUT",
                    help="also write findings as SARIF 2.1.0 to OUT")
    ap.add_argument("--today", metavar="YYYY-MM-DD",
                    help="override today's date for suppression-expiry "
                         "checks (tests use this for determinism)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    try:
        args = ap.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code == 0 else 2

    if args.list_rules:
        width = max(len(r.id) for r in RULES)
        fam = None
        for r in RULES:
            if r.family != fam:
                fam = r.family
                print(f"[{fam}]")
            print(f"  {r.id:<{width}}  {r.short}")
        return 0

    today = None
    if args.today:
        try:
            today = datetime.date.fromisoformat(args.today)
        except ValueError:
            print(f"analyze: bad --today date '{args.today}'",
                  file=sys.stderr)
            return 2

    try:
        findings, scanned = run_analysis(args.root, args.paths or None,
                                         today=today)
    except OSError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    render_human(findings, len(scanned))
    if args.sarif:
        root_uri = "file://" + os.path.abspath(args.root).rstrip("/") + "/"
        write_sarif(args.sarif, findings, root_uri)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
