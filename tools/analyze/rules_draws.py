"""Counter-addressed draw discipline.

The repo's sharded execution contract (PR 5 onward): inside a sharded
region — a lambda handed to `util::parallel_for` — stochastic decisions
must be counter-addressed (`util::splitmix_at(base, index)`) or come
from a stream derived *inside* the region from the region index.  A
draw on a caller-owned stream (`rng()`, `rng.uniform()`, or passing the
caller's stream to `draw_binomial`) consumes stream positions in an
order that depends on the shard count and schedule, silently breaking
bit-identical-across-shards — exactly one caller-stream draw happens
per stochastic frame, and it happens *outside* the sharded region.
"""

from __future__ import annotations

from .findings import Finding
from .model import Function, Repo
from .rules_rng import DRAW_METHODS, RNG_TYPE


def _rng_vars_outside(repo: Repo, fn: Function,
                      body: tuple[int, int]) -> set[str]:
    """Names of Xoshiro-typed vars visible in `fn` but declared outside
    the token range `body` (the lambda)."""
    lo, hi = body
    names = set()
    for loc in fn.locals.values():
        if RNG_TYPE in loc.type_text and not lo <= loc.tok < hi:
            names.add(loc.name)
    for prm in fn.params:
        if RNG_TYPE in prm.type_text:
            names.add(prm.name)
    if fn.cls:
        for cls in repo.class_named(fn.cls):
            for n, m in cls.members.items():
                if RNG_TYPE in m.type_text:
                    names.add(n)
    return names


def run(repo: Repo, scanned: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    for fm in repo.files.values():
        if fm.rel not in scanned:
            continue
        for fn in fm.functions:
            for lam in fn.lambdas:
                if lam.dispatch is None or lam.body == (0, 0):
                    continue
                lo, hi = lam.body
                outside = _rng_vars_outside(repo, fn, (lo, hi))
                declared_inside = {
                    name for name, loc in fn.locals.items()
                    if lo <= loc.tok < hi} | set(lam.params)
                caller_streams = outside - declared_inside
                if not caller_streams:
                    continue
                for call in fn.calls:
                    if not lo <= call.tok < hi:
                        continue
                    hit = None
                    if call.recv is None and call.name in caller_streams:
                        hit = call.name  # rng()
                    elif call.recv in caller_streams and \
                            call.name in DRAW_METHODS:
                        hit = call.recv  # rng.uniform() etc.
                    elif call.name == "draw_binomial" and len(call.args) \
                            >= 3:
                        alo, ahi = call.args[-1]
                        arg_ids = {t.text for t in fm.tokens[alo:ahi]
                                   if t.kind == "id"}
                        shared = arg_ids & caller_streams
                        if shared:
                            hit = sorted(shared)[0]
                    if hit is not None:
                        findings.append(Finding(
                            rule="caller-draw-in-shard", rel=fm.rel,
                            line=call.line, col=1,
                            message=(
                                f"caller stream '{hit}' is advanced inside "
                                f"a region dispatched via "
                                f"'{lam.dispatch}'; draws there depend on "
                                "shard count/schedule — use "
                                "util::splitmix_at(base, index) or derive "
                                "a per-shard stream from the region "
                                "index")))
    return findings
