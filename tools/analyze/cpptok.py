"""C++ tokenizer for the bfce semantic analyzer.

A real lexer (not line regexes): it understands line/block comments,
ordinary and raw string literals, char literals, preprocessor directives
(including backslash continuations) and multi-character operators, and it
attaches a (line, col) position to every token.  Comments are captured on
the side — the suppression machinery needs `// lint:allow(...)` text with
exact line numbers — but never appear in the code token stream, so no rule
can be tripped (or appeased) by prose.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
ID = "id"  # identifiers and keywords
NUM = "num"  # numeric literals (incl. hex / suffixes)
STR = "str"  # string literal (raw or cooked); text is the *quoted* form
CHR = "chr"  # character literal
OP = "op"  # punctuation / operators ('::' and '->' are single tokens)
PP = "pp"  # one whole preprocessor directive


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    col: int


@dataclass(frozen=True)
class Comment:
    text: str  # without the // or /* */ fence
    line: int  # line the comment starts on
    own_line: bool  # nothing but whitespace precedes it on its line


_TWO_CHAR_OPS = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
}

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


def tokenize(text: str) -> tuple[list[Token], list[Comment]]:
    """Lexes `text`, returning (code tokens, comments)."""
    tokens: list[Token] = []
    comments: list[Comment] = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def col(pos: int) -> int:
        return pos - line_start + 1

    def line_is_blank_before(pos: int) -> bool:
        return text[line_start:pos].strip() == ""

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Preprocessor directive: swallow to end of line, honouring
        # backslash continuations (and comments inside are dropped).
        if c == "#" and line_is_blank_before(i):
            start, start_line, start_col = i, line, col(i)
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    i += 2
                    line += 1
                    line_start = i
                    continue
                if text[i] == "\n":
                    break
                i += 1
            tokens.append(Token(PP, text[start:i], start_line, start_col))
            continue

        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start = i + 2
            own = line_is_blank_before(i)
            start_line = line
            while i < n and text[i] != "\n":
                i += 1
            comments.append(Comment(text[start:i], start_line, own))
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            own = line_is_blank_before(i)
            start_line = line
            start = i + 2
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
                i += 1
            comments.append(Comment(text[start:i], start_line, own))
            i = min(n, i + 2)
            continue

        # Raw string literal: R"delim( ... )delim"
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = i + 2
            while j < n and text[j] != "(":
                j += 1
            delim = text[i + 2:j]
            close = ")" + delim + '"'
            end = text.find(close, j)
            if end < 0:
                end = n
            else:
                end += len(close)
            tok_text = text[i:end]
            tokens.append(Token(STR, tok_text, line, col(i)))
            line += tok_text.count("\n")
            nl = tok_text.rfind("\n")
            if nl >= 0:
                line_start = i + nl + 1
            i = end
            continue

        # Cooked string / char literals (with escapes).
        if c == '"' or c == "'":
            quote = c
            start, start_col = i, col(i)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; bail at EOL
                    break
                i += 1
            i = min(n, i + 1)
            kind = STR if quote == '"' else CHR
            tokens.append(Token(kind, text[start:i], line, start_col))
            continue

        # Numbers (decimal, hex, binary, floats, digit separators,
        # suffixes). A leading digit is unambiguous in C++.
        if c in _DIGITS:
            start, start_col = i, col(i)
            while i < n and (text[i] in _ID_CONT or text[i] in ".'"
                             or (text[i] in "+-" and text[i - 1] in "eEpP")):
                i += 1
            tokens.append(Token(NUM, text[start:i], line, start_col))
            continue

        # Identifiers / keywords.
        if c in _ID_START:
            start, start_col = i, col(i)
            while i < n and text[i] in _ID_CONT:
                i += 1
            tokens.append(Token(ID, text[start:i], line, start_col))
            continue

        # Operators / punctuation.
        if text[i:i + 2] in _TWO_CHAR_OPS:
            tokens.append(Token(OP, text[i:i + 2], line, col(i)))
            i += 2
            continue
        tokens.append(Token(OP, c, line, col(i)))
        i += 1

    return tokens, comments
