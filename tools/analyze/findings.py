"""Finding type + the suppression (`// lint:allow`) machinery.

Suppression format (docs/TOOLING.md is the canonical reference):

    // lint:allow(rule-a[, rule-b]) owner=<who> expires=<YYYY-MM-DD> <why>

A suppression covers findings on its own line and — when it is a
standalone comment line — the next line.  Hygiene is enforced: the cited
rule must exist, must actually fire at the covered location (otherwise
the suppression is *stale*), and the comment must carry an owner, an
unexpired expiry date, and a non-empty justification.  Hygiene findings
can never themselves be suppressed.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field

ALLOW_RE = re.compile(r"lint:allow\(([A-Za-z0-9_,\- ]+)\)")
OWNER_RE = re.compile(r"\bowner=([A-Za-z0-9_.@/-]+)")
EXPIRES_RE = re.compile(r"\bexpires=(\d{4}-\d{2}-\d{2})")


@dataclass(frozen=True)
class Finding:
    rule: str
    rel: str
    line: int
    col: int
    message: str

    def key(self) -> tuple[str, str, int]:
        return (self.rule, self.rel, self.line)


@dataclass
class Suppression:
    rel: str
    line: int  # line of the comment itself
    rules: set[str]
    owner: str | None
    expires: datetime.date | None
    reason: str
    covered_lines: tuple[int, ...]  # lines this suppression applies to
    used: set[str] = field(default_factory=set)  # rules it actually silenced


# Hygiene rule ids (not suppressible).
HYGIENE_RULES = {
    "suppression-unknown-rule",
    "suppression-stale",
    "suppression-missing-owner",
    "suppression-missing-expiry",
    "suppression-expired",
    "suppression-missing-reason",
}


def collect_suppressions(rel: str, comments) -> list[Suppression]:
    out: list[Suppression] = []
    for c in comments:
        m = ALLOW_RE.search(c.text)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        owner_m = OWNER_RE.search(c.text)
        exp_m = EXPIRES_RE.search(c.text)
        expires = None
        if exp_m:
            try:
                expires = datetime.date.fromisoformat(exp_m.group(1))
            except ValueError:
                expires = None
        tail = c.text[m.end():]
        tail = OWNER_RE.sub("", tail)
        tail = EXPIRES_RE.sub("", tail)
        reason = tail.strip(" \t-—:;")
        covered = (c.line, c.line + 1) if c.own_line else (c.line,)
        out.append(Suppression(rel=rel, line=c.line, rules=rules,
                               owner=owner_m.group(1) if owner_m else None,
                               expires=expires, reason=reason,
                               covered_lines=covered))
    return out


def apply_suppressions(
        findings: list[Finding],
        suppressions: dict[str, list[Suppression]],
        today: datetime.date | None = None) -> list[Finding]:
    """Filters suppressed findings out, then appends hygiene findings for
    malformed / stale / expired suppressions. Returns the surviving list."""
    today = today or datetime.date.today()
    kept: list[Finding] = []
    for f in findings:
        silenced = False
        if f.rule not in HYGIENE_RULES:
            for s in suppressions.get(f.rel, []):
                if f.line in s.covered_lines and f.rule in s.rules:
                    s.used.add(f.rule)
                    silenced = True
                    break
        if not silenced:
            kept.append(f)

    from .catalog import RULE_IDS  # late import: catalog lists every rule
    for rel in sorted(suppressions):
        for s in suppressions[rel]:
            loc = dict(rel=s.rel, line=s.line, col=1)
            for r in sorted(s.rules):
                if r not in RULE_IDS:
                    kept.append(Finding(
                        rule="suppression-unknown-rule", message=(
                            f"lint:allow cites unknown rule '{r}' "
                            f"(see --list-rules for the catalogue)"), **loc))
                elif r not in s.used:
                    kept.append(Finding(
                        rule="suppression-stale", message=(
                            f"lint:allow({r}) is stale: the rule no longer "
                            f"fires at the covered line(s) "
                            f"{list(s.covered_lines)} — delete the "
                            "suppression"), **loc))
            if s.owner is None:
                kept.append(Finding(
                    rule="suppression-missing-owner", message=(
                        "lint:allow has no owner=<who>; every suppression "
                        "must name who re-justifies it"), **loc))
            if s.expires is None:
                kept.append(Finding(
                    rule="suppression-missing-expiry", message=(
                        "lint:allow has no expires=<YYYY-MM-DD>; every "
                        "suppression must carry an expiry date"), **loc))
            elif s.expires < today:
                kept.append(Finding(
                    rule="suppression-expired", message=(
                        f"lint:allow expired on {s.expires.isoformat()}; "
                        "re-justify with a new expiry or fix the code"),
                    **loc))
            if not s.reason:
                kept.append(Finding(
                    rule="suppression-missing-reason", message=(
                        "lint:allow has no justification text; say why the "
                        "violation is acceptable"), **loc))
    return kept
