"""SARIF 2.1.0 emission.

One run, one driver (`bfce-analyze`), every catalogue rule listed in
`tool.driver.rules` so `ruleIndex` back-references resolve, and one
`result` per finding with a physical location.  URIs are repo-relative
under the `SRCROOT` uriBaseId, per the SARIF packaging guidance."""

from __future__ import annotations

import json

from .catalog import RULES
from .findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "bfce-analyze"
TOOL_VERSION = "1.0.0"


def to_sarif(findings: list[Finding], root_uri: str) -> dict:
    rule_index = {r.id: i for i, r in enumerate(RULES)}
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.rel,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": max(1, f.col),
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri":
                        "https://example.invalid/bfce/docs/TOOLING.md",
                    "rules": [{
                        "id": r.id,
                        "shortDescription": {"text": r.short},
                        "properties": {"family": r.family},
                        "defaultConfiguration": {"level": "error"},
                    } for r in RULES],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": root_uri},
            },
            "results": results,
        }],
    }


def write_sarif(path: str, findings: list[Finding], root_uri: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings, root_uri), fh, indent=2, sort_keys=False)
        fh.write("\n")
