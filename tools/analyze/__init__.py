"""bfce semantic invariant analyzer (`python3 tools/analyze`).

Rule families: RNG provenance, lock discipline, counter-addressed draw
discipline, suppression hygiene, plus the determinism rules ported from
tools/lint_determinism.py.  See docs/TOOLING.md for the catalogue.
"""
