"""Lock-discipline rules.

The model gives us every RAII guard site with *held intervals* (token
ranges that honour manual `guard.unlock()` / `guard.lock()`).  From
those we:

  * resolve each guard to a stable mutex identity (Class::member for
    member mutexes, file::name for statics/globals, function::name for
    parameters) and build the acquired-while-holding graph — both
    directly nested guards and, interprocedurally, locks acquired by
    repo functions called while a guard is held (receiver-typed calls
    are only followed when the receiver resolves to a repo class, so
    `condition_variable::wait` never aliases a repo method);
  * report `lock-order` for any cycle in that graph (including
    self-edges: re-acquiring a non-recursive mutex while held);
  * report `lock-across-dispatch` when a guard is held at a call that
    (transitively) reaches `util::parallel_for` — the worker team would
    contend on, or deadlock against, the caller's lock.
"""

from __future__ import annotations

from dataclasses import dataclass

from .findings import Finding
from .model import DISPATCH_NAMES, Function, Guard, MUTEX_TYPES, Repo

# std methods that must never be treated as repo calls even on a name
# collision (cv.wait vs. EstimationService::wait, etc.).
_STD_SYNC_METHODS = {
    "wait", "wait_for", "wait_until", "notify_one", "notify_all",
    "lock", "unlock", "try_lock", "lock_shared", "unlock_shared",
}
_CV_TYPES = {"condition_variable", "condition_variable_any"}


@dataclass(frozen=True)
class Acq:
    key: str
    rel: str
    line: int
    fn: str


def _recv_type(repo: Repo, fn: Function, recv: str | None) -> str:
    if not recv:
        return ""
    head = recv.split(".")[0]
    loc = fn.locals.get(head)
    if loc is not None:
        return loc.type_text
    for prm in fn.params:
        if prm.name == head:
            return prm.type_text
    if fn.cls:
        for cls in repo.class_named(fn.cls):
            m = cls.members.get(head)
            if m is not None:
                return m.type_text
    return ""


def _mutex_key(repo: Repo, fm, fn: Function, g: Guard) -> str:
    """Stable identity for the mutex a guard expression names."""
    expr = g.mutex_expr.replace("this -> ", "").replace("* ", "")
    name = expr.split(",")[0].strip()
    name = name.split(" ")[-1] if " " in name else name
    leaf = name.split(".")[-1].split("->")[-1].strip("&() ")
    if fn.cls:
        for cls in repo.class_named(fn.cls):
            if leaf in cls.members:
                return f"{cls.qname}::{leaf}"
    for loc in fn.statics:
        if loc.name == leaf:
            return f"{fn.qname}::{leaf}"
    for prm in fn.params:
        if prm.name == leaf:
            return f"param::{leaf}"
    for g2 in fm.globals:
        if g2.name == leaf:
            return f"{fm.rel}::{leaf}"
    return f"{fm.rel}::{leaf}"


def _callee_functions(repo: Repo, fn: Function, call) -> list[Function]:
    """Repo functions a call may target — receiver-typed calls are only
    followed when the receiver's type resolves to a repo class, so a
    `condition_variable::wait` can never alias a repo method named
    `wait`."""
    if call.name in _STD_SYNC_METHODS:
        return []
    if call.recv is not None:
        rtype = _recv_type(repo, fn, call.recv)
        base = rtype.split("::")[-1].split("<")[0].strip()
        if base in _CV_TYPES or base in MUTEX_TYPES:
            return []
        words = rtype.replace("*", " ").replace("&", " ").split()
        if not any(repo.class_named(w.split("<")[0].split("::")[-1])
                   for w in words):
            return []
    return repo.functions_named(call.name)


def _direct_acquires(repo: Repo, fm, fn: Function) -> set[str]:
    return {_mutex_key(repo, fm, fn, g) for g in fn.guards}


def _transitive(repo: Repo, scanned: set[str],
                seed_map: dict[str, set[str]]) -> dict[str, set[str]]:
    """Name-keyed fixpoint closure of `seed_map` over the call graph."""
    out = {k: set(v) for k, v in seed_map.items()}
    for _ in range(12):
        changed = False
        for fm in repo.files.values():
            if fm.rel not in scanned:
                continue
            for fn in fm.functions:
                acc = out.setdefault(fn.name, set())
                before = len(acc)
                for call in fn.calls:
                    for callee in _callee_functions(repo, fn, call):
                        acc |= out.get(callee.name, set())
                if len(acc) != before:
                    changed = True
        if not changed:
            break
    return out


def run(repo: Repo, scanned: set[str]) -> list[Finding]:
    # Per-function direct lock sets, keyed by function *name* for the
    # call-graph closure.
    direct: dict[str, set[str]] = {}
    for fm in repo.files.values():
        if fm.rel not in scanned:
            continue
        for fn in fm.functions:
            if fn.guards:
                direct.setdefault(fn.name, set()).update(
                    _direct_acquires(repo, fm, fn))
    trans_locks = _transitive(repo, scanned, direct)
    dispatch_seed = {name: {"<dispatch>"} for name in DISPATCH_NAMES}
    trans_dispatch = _transitive(repo, scanned, dispatch_seed)

    edges: dict[tuple[str, str], Acq] = {}
    findings: list[Finding] = []

    for fm in repo.files.values():
        if fm.rel not in scanned:
            continue
        for fn in fm.functions:
            guards = [(g, _mutex_key(repo, fm, fn, g)) for g in fn.guards]
            # Nested RAII acquisitions.
            for ga, ka in guards:
                for gb, kb in guards:
                    if ga is gb:
                        continue
                    if any(lo <= gb.tok < hi for lo, hi in ga.held):
                        edges.setdefault((ka, kb), Acq(
                            key=kb, rel=fm.rel, line=gb.line, fn=fn.qname))
                        if ka == kb:
                            findings.append(Finding(
                                rule="lock-order", rel=fm.rel, line=gb.line,
                                col=1,
                                message=(f"'{ka}' is re-acquired while "
                                         "already held (self-deadlock on "
                                         "a non-recursive mutex)")))
            # Calls made while holding.
            for call in fn.calls:
                held_under = [
                    (g, k) for g, k in guards
                    if any(lo <= call.tok < hi for lo, hi in g.held)]
                if not held_under:
                    continue
                if call.name in DISPATCH_NAMES or \
                        trans_dispatch.get(call.name):
                    callees = (_callee_functions(repo, fn, call)
                               if call.name not in DISPATCH_NAMES else [1])
                    if callees:
                        for g, k in held_under:
                            findings.append(Finding(
                                rule="lock-across-dispatch", rel=fm.rel,
                                line=call.line, col=1,
                                message=(f"'{k}' is held across "
                                         f"'{call.name}' which dispatches "
                                         "onto the worker team; release "
                                         "the lock before fanning out")))
                for callee in _callee_functions(repo, fn, call):
                    for key in trans_locks.get(callee.name, set()):
                        for g, k in held_under:
                            if key == k:
                                findings.append(Finding(
                                    rule="lock-order", rel=fm.rel,
                                    line=call.line, col=1,
                                    message=(f"'{k}' is held at a call to "
                                             f"'{callee.name}' which "
                                             "re-acquires it (self-"
                                             "deadlock)")))
                            else:
                                edges.setdefault((k, key), Acq(
                                    key=key, rel=fm.rel, line=call.line,
                                    fn=fn.qname))

    # Inconsistent global order: report every 2-cycle once.
    seen: set[frozenset] = set()
    for (a, b), acq in sorted(edges.items()):
        if a == b:
            continue
        rev = edges.get((b, a))
        if rev is None:
            continue
        pair = frozenset((a, b))
        if pair in seen:
            continue
        seen.add(pair)
        findings.append(Finding(
            rule="lock-order", rel=acq.rel, line=acq.line, col=1,
            message=(f"inconsistent lock order: '{a}' -> '{b}' here, but "
                     f"'{b}' -> '{a}' at {rev.rel}:{rev.line} "
                     f"({rev.fn}); pick one global order")))
    return findings
