"""Analysis driver: file discovery, parsing, rule dispatch, suppression
application and the human-readable report.

File discovery prefers the compile database (`compile_commands.json`
exported by any build dir under the root) for the .cpp list — exactly
the TUs the build compiles — and always unions in headers by glob, since
headers never appear in a compile database.  Without a compile database
it falls back to a pure glob, so the analyzer works on a fresh checkout
before the first configure.
"""

from __future__ import annotations

import datetime
import json
import os
import sys

from . import (rules_draws, rules_exec, rules_legacy, rules_locks, rules_rng)
from .findings import Finding, apply_suppressions, collect_suppressions
from .model import Repo, parse_file

CPP_EXTS = (".cpp", ".cc", ".cxx")
HDR_EXTS = (".hpp", ".hh", ".h", ".hxx")
DEFAULT_SCAN_PREFIX = "src/"


def _rel(root: str, path: str) -> str:
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


def _compile_db_files(root: str) -> list[str]:
    """Repo-relative .cpp files named by any compile_commands.json under
    the root's build directories (first one found wins)."""
    candidates = [os.path.join(root, "compile_commands.json")]
    try:
        for entry in sorted(os.listdir(root)):
            if entry.startswith("build"):
                candidates.append(
                    os.path.join(root, entry, "compile_commands.json"))
    except OSError:
        pass
    for cand in candidates:
        if not os.path.isfile(cand):
            continue
        try:
            with open(cand, encoding="utf-8") as fh:
                db = json.load(fh)
        except (OSError, ValueError):
            continue
        rels = []
        for tu in db:
            f = tu.get("file", "")
            if not os.path.isabs(f):
                f = os.path.join(tu.get("directory", root), f)
            rel = _rel(root, f)
            if not rel.startswith(".."):
                rels.append(rel)
        if rels:
            return rels
    return []


def _glob_sources(root: str, prefix: str) -> list[str]:
    rels = []
    base = os.path.join(root, prefix)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        for fname in sorted(filenames):
            if fname.endswith(CPP_EXTS + HDR_EXTS):
                rels.append(_rel(root, os.path.join(dirpath, fname)))
    return rels


def discover(root: str, paths: list[str] | None = None) -> list[str]:
    """Repo-relative files to scan. Explicit `paths` (files or dirs)
    override the default src/ sweep."""
    if paths:
        rels: list[str] = []
        for p in paths:
            ap = p if os.path.isabs(p) else os.path.join(root, p)
            if os.path.isdir(ap):
                rels.extend(_glob_sources(root, _rel(root, ap)))
            elif os.path.isfile(ap):
                rels.append(_rel(root, ap))
        return sorted(set(rels))
    db_cpps = [r for r in _compile_db_files(root)
               if r.startswith(DEFAULT_SCAN_PREFIX)]
    globbed = _glob_sources(root, DEFAULT_SCAN_PREFIX)
    if db_cpps:
        headers = [r for r in globbed if r.endswith(HDR_EXTS)]
        return sorted(set(db_cpps) | set(headers))
    return sorted(set(globbed))


RULE_MODULES = (rules_rng, rules_locks, rules_exec, rules_draws, rules_legacy)


def run_analysis(root: str, paths: list[str] | None = None,
                 today: datetime.date | None = None,
                 ) -> tuple[list[Finding], list[str]]:
    rels = discover(root, paths)
    repo = Repo()
    for rel in rels:
        try:
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"analyze: cannot read {rel}: {exc}", file=sys.stderr)
            continue
        repo.files[rel] = parse_file(rel, text)

    scanned = set(repo.files)
    findings: list[Finding] = []
    for mod in RULE_MODULES:
        findings.extend(mod.run(repo, scanned))

    # Dedupe (a rule may blame the same site via two paths), keep stable
    # file/line order.
    seen: set[tuple[str, str, int]] = set()
    unique: list[Finding] = []
    for f in sorted(findings, key=lambda f: (f.rel, f.line, f.rule)):
        if f.key() in seen:
            continue
        seen.add(f.key())
        unique.append(f)

    suppressions = {rel: collect_suppressions(rel, fm.comments)
                    for rel, fm in repo.files.items()}
    surviving = apply_suppressions(unique, suppressions, today)
    surviving.sort(key=lambda f: (f.rel, f.line, f.rule))
    return surviving, sorted(scanned)


def render_human(findings: list[Finding], scanned_count: int,
                 out=None) -> None:
    out = out or sys.stdout
    for f in findings:
        print(f"{f.rel}:{f.line}:{f.col}: error: [{f.rule}] {f.message}",
              file=out)
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"analyze: {len(findings)} {noun} in {scanned_count} files",
          file=out)
