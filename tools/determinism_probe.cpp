// Prints a digest of sim::run_experiment outputs for a handful of
// (estimator, mode, threads) points. Used by the FrameEngine refactor to
// prove bit-identical results before/after migrating the estimator call
// sites: run it on both trees and diff the output.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/bfce.hpp"
#include "estimators/registry.hpp"
#include "rfid/population.hpp"
#include "sim/experiment.hpp"

using namespace bfce;

namespace {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void probe(const char* protocol, const rfid::TagPopulation& pop,
           rfid::FrameMode mode, unsigned threads) {
  sim::ExperimentConfig cfg;
  cfg.trials = 8;
  cfg.req = {0.1, 0.1};
  cfg.mode = mode;
  cfg.seed = 20150701;
  cfg.threads = threads;
  const auto records = sim::run_experiment(
      pop, [&] { return estimators::make_estimator(protocol); }, cfg);
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& r : records) {
    h = fnv1a(&r.n_hat, sizeof(r.n_hat), h);
    h = fnv1a(&r.accuracy, sizeof(r.accuracy), h);
    h = fnv1a(&r.time_s, sizeof(r.time_s), h);
    h = fnv1a(&r.rounds, sizeof(r.rounds), h);
  }
  std::printf("%s mode=%d threads=%u digest=%016" PRIx64 "\n", protocol,
              static_cast<int>(mode), threads, h);
}

}  // namespace

int main() {
  const auto pop =
      rfid::make_population(20000, rfid::TagIdDistribution::kT2ApproxNormal,
                            99);
  for (const char* name : {"BFCE", "ZOE", "SRC", "UPE", "LOF"}) {
    for (const auto mode : {rfid::FrameMode::kExact, rfid::FrameMode::kSampled}) {
      probe(name, pop, mode, 1);
      probe(name, pop, mode, 4);
    }
  }
  return 0;
}
