#!/usr/bin/env bash
# CI entry point: lints first, then the preset build/test matrix.
#
#   tools/ci.sh                 # lints + release + asan + tsan
#   tools/ci.sh --quick         # lints + release-preset unit tests only
#   tools/ci.sh asan tsan       # lints + just the named presets
#   tools/ci.sh --no-lint tsan  # skip the lint stage (debugging builds)
#   tools/ci.sh --conformance   # + the statistical (ε, δ) contract tier
#
# Stages:
#   1. tools/lint_determinism.py — bans nondeterminism sources and raw
#      threading outside the sanctioned layers (file:line diagnostics).
#   2. tools/tidy.sh — clang-tidy over src/ with the curated .clang-tidy
#      (loud skip when clang-tidy is not installed).
#   3. Preset matrix. Every preset builds with -Wall -Wextra -Werror.
#        release — optimised; runs the `unit`-labelled tests, then a
#                  30-second bounded tracking_bench smoke run.
#        asan    — ASan+UBSan, no recovery; runs the `unit` tests.
#        tsan    — ThreadSanitizer; runs the `stress`-labelled race
#                  suite plus the concurrency-labelled unit tests.
#      (`slow` sweeps run in the tier-1 plain `ctest` and nightlies:
#      `ctest --test-dir build-release -L slow`.)
#   4. Opt-in (--conformance): `ctest -L conformance` in the release
#      build — the seeded Clopper–Pearson sweep of tests/
#      conformance_test.cpp. Also works against a tsan build dir:
#      `ctest --test-dir build-tsan -L conformance`.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
lint=1
conformance=0
presets=()
for arg in "$@"; do
  case "${arg}" in
    --quick) quick=1 ;;
    --no-lint) lint=0 ;;
    --conformance) conformance=1 ;;
    --help|-h)
      sed -n '2,27p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) presets+=("${arg}") ;;
  esac
done
if [ ${#presets[@]} -eq 0 ]; then
  if [ "${quick}" -eq 1 ]; then
    presets=(release)
  else
    presets=(release asan tsan)
  fi
fi

if [ "${lint}" -eq 1 ]; then
  echo "==== lint: determinism ====================================="
  python3 tools/lint_determinism.py
  echo "==== lint: clang-tidy ======================================"
  tools/tidy.sh
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
  if [ "${preset}" = "release" ]; then
    echo "==== tracking smoke (release) =============================="
    # Bounded: the smoke workload finishes in seconds; the timeout is a
    # hang guard, and the binary's own exit code asserts tracked RMSE
    # beats raw on the ramp and step scenarios.
    (cd "build-release" && timeout 30 ./bench/tracking_bench --smoke)
  fi
done

if [ "${conformance}" -eq 1 ]; then
  echo "==== conformance tier ======================================"
  if [ ! -d build-release ]; then
    cmake --preset release
    cmake --build --preset release -j "${jobs}"
  fi
  ctest --test-dir build-release -L conformance --output-on-failure
fi
echo "==== all stages green ======================================"
