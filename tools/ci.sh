#!/usr/bin/env bash
# CI entry point: build and test both CMake presets.
#
#   tools/ci.sh            # release + asan
#   tools/ci.sh asan       # just one preset
#
# The asan preset runs the whole test suite (including the
# service/worker-pool tests) under AddressSanitizer + UBSan with no
# recovery, so data races that corrupt memory and UB in the hot paths
# fail the build loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan)
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
done
echo "==== all presets green ====================================="
