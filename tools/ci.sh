#!/usr/bin/env bash
# CI entry point: lints first, then the preset build/test matrix.
#
#   tools/ci.sh                 # lints + release + asan + tsan
#   tools/ci.sh --quick         # lints + release-preset unit tests only
#   tools/ci.sh asan tsan       # lints + just the named presets
#   tools/ci.sh --no-lint tsan  # skip the lint stage (debugging builds)
#   tools/ci.sh --conformance   # + the statistical (ε, δ) contract tier
#   tools/ci.sh --perf-smoke    # + frame-throughput regression gate
#
# Stages:
#   1. tools/analyze — the semantic invariant analyzer: RNG provenance,
#      lock discipline, counter-addressed draw discipline, suppression
#      hygiene, plus the ported determinism rules. Runs its fixture
#      self-test first, then must exit 0 on src/ (SARIF written to
#      build-lint/analyze.sarif when the directory exists).
#   2. tools/tidy.sh — clang-tidy over src/ with the curated .clang-tidy
#      (loud skip when clang-tidy is not installed).
#   3. Preset matrix. Every preset builds with -Wall -Wextra -Werror.
#        release — optimised; runs the `unit`-labelled tests, then a
#                  30-second bounded tracking_bench smoke run.
#        asan    — ASan+UBSan (halt_on_error); runs the `unit` tests,
#                  then the `recovery` tier — the snapshot
#                  fault-injection and wire-robustness suites whole, so
#                  every planted corruption is rejected under the
#                  sanitizers.
#        ubsan-integer — implicit-conversion/integer UB; runs the
#                  `unit` tests plus the same `recovery` tier.
#        tsan    — ThreadSanitizer; runs the `stress`-labelled race
#                  suite plus the concurrency-labelled unit tests.
#      (`slow` sweeps run in the tier-1 plain `ctest` and nightlies:
#      `ctest --test-dir build-release -L slow`.)
#   4. Opt-in (--conformance): `ctest -L conformance` in the release
#      build — the seeded Clopper–Pearson sweep of tests/
#      conformance_test.cpp. Also works against a tsan build dir:
#      `ctest --test-dir build-tsan -L conformance`.
#   5. Opt-in (--perf-smoke): reruns `micro_frame --baseline` in the
#      release build and fails if any gated throughput column —
#      engine/sampled/aloha sequential plus the three kAuto adaptive
#      columns — regresses more than 30% at any n against the committed
#      BENCH_frame.json. The raw sharded columns stay informational:
#      their absolute numbers depend on core count and AVX-512
#      availability, while the kAuto columns gate the planner's "never
#      a pessimization" promise on every host. Then replays the committed BENCH_service.json
#      workload through fleet_service and fails if throughput collapses
#      below 0.5x of the committed baseline (or if the cached pass ever
#      diverges from the uncached one).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
lint=1
conformance=0
perf_smoke=0
presets=()
for arg in "$@"; do
  case "${arg}" in
    --quick) quick=1 ;;
    --no-lint) lint=0 ;;
    --conformance) conformance=1 ;;
    --perf-smoke) perf_smoke=1 ;;
    --help|-h)
      sed -n '2,33p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) presets+=("${arg}") ;;
  esac
done
if [ ${#presets[@]} -eq 0 ]; then
  if [ "${quick}" -eq 1 ]; then
    presets=(release)
  else
    presets=(release asan tsan)
  fi
fi

if [ "${lint}" -eq 1 ]; then
  echo "==== lint: analyzer fixture self-test ======================"
  python3 tests/analyzer/run_fixtures.py
  echo "==== lint: semantic analyzer ==============================="
  mkdir -p build-lint
  python3 tools/analyze --root . --sarif build-lint/analyze.sarif
  echo "==== lint: clang-tidy ======================================"
  tools/tidy.sh
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
  if [ "${preset}" = "asan" ] || [ "${preset}" = "ubsan-integer" ]; then
    echo "==== recovery tier (${preset}) ============================="
    # Snapshot fault-injection + wire robustness, run whole under the
    # sanitizers: truncated/bit-flipped/version-bumped snapshot files
    # and hostile wire frames must produce typed errors, never UB.
    ctest --test-dir "build-${preset}" -L recovery --output-on-failure
  fi
  if [ "${preset}" = "release" ]; then
    echo "==== tracking smoke (release) =============================="
    # The smoke run needs the committed tracking baseline to compare
    # against; a missing file means the baseline was never regenerated
    # after a tracking change, so fail fast rather than skip silently.
    if [ ! -f BENCH_tracking.json ]; then
      echo "FAIL: BENCH_tracking.json is missing from the repo root." >&2
      echo "Regenerate it: (cd build-release && ./bench/tracking_bench)" >&2
      echo "then commit the refreshed baseline." >&2
      exit 1
    fi
    # Bounded: the smoke workload finishes in seconds; the timeout is a
    # hang guard, and the binary's own exit code asserts tracked RMSE
    # beats raw on the ramp and step scenarios.
    (cd "build-release" && timeout 30 ./bench/tracking_bench --smoke)
  fi
done

if [ "${conformance}" -eq 1 ]; then
  echo "==== conformance tier ======================================"
  if [ ! -d build-release ]; then
    cmake --preset release
    cmake --build --preset release -j "${jobs}"
  fi
  ctest --test-dir build-release -L conformance --output-on-failure
fi

if [ "${perf_smoke}" -eq 1 ]; then
  echo "==== perf smoke: frame throughput =========================="
  if [ ! -f BENCH_frame.json ]; then
    echo "FAIL: BENCH_frame.json is missing from the repo root." >&2
    echo "Regenerate it: (cd build-release && ./bench/micro_frame --baseline)" >&2
    echo "then commit the refreshed baseline." >&2
    exit 1
  fi
  if [ ! -d build-release ]; then
    cmake --preset release
    cmake --build --preset release -j "${jobs}"
  fi
  cmake --build --preset release -j "${jobs}" --target micro_frame
  (cd "build-release" && timeout 300 ./bench/micro_frame --baseline)
  # Gate on the sequential columns: the exact-mode engine walk and the
  # sampled-mode executors must each stay within 30% of the committed
  # baseline at every n. (The sharded and legacy columns are
  # informational — their ratios shift with core count and ISA, and
  # legacy only regresses if the reference does.)
  python3 - BENCH_frame.json build-release/BENCH_frame.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    committed = {p["n"]: p for p in json.load(f)["points"]}
with open(sys.argv[2]) as f:
    fresh = {p["n"]: p for p in json.load(f)["points"]}

# Sequential columns exist on every host; the *_auto columns gate the
# adaptive planner's "never a pessimization" promise (kAuto must track
# the faster walk, so a collapse there means the cost model routed a
# batch onto a losing path). aloha_tags_per_s rides the ALOHA pair
# stage the same way engine/sampled ride theirs.
GATED = (
    "engine_tags_per_s",
    "sampled_tags_per_s",
    "aloha_tags_per_s",
    "bloom_auto_tags_per_s",
    "sampled_auto_tags_per_s",
    "aloha_auto_tags_per_s",
)
failed = False
for n, base in sorted(committed.items()):
    if n not in fresh:
        print(f"FAIL: fresh baseline has no point for n={n}")
        failed = True
        continue
    for column in GATED:
        if column not in base:
            # An older committed baseline predates the column; the next
            # recommit picks it up.
            continue
        old = base[column]
        new = fresh[n][column]
        ratio = new / old if old > 0 else float("inf")
        status = "ok" if ratio >= 0.7 else "REGRESSION"
        print(f"n={n:>9,}: {column} {old:.3e} -> {new:.3e} tags/s "
              f"({ratio:.2f}x) {status}")
        if ratio < 0.7:
            failed = True
if failed:
    print("FAIL: a gated throughput column regressed more than 30% "
          "against the committed BENCH_frame.json")
    sys.exit(1)
print("perf smoke: sequential, aloha and kAuto throughput within 30% "
      "of baseline")
EOF
  echo "==== perf smoke: service throughput ========================"
  if [ ! -f BENCH_service.json ]; then
    echo "FAIL: BENCH_service.json is missing from the repo root." >&2
    echo "Regenerate it: (cd build-release && ./bench/fleet_service)" >&2
    echo "then commit the refreshed baseline." >&2
    exit 1
  fi
  cmake --build --preset release -j "${jobs}" --target fleet_service
  # Replay the committed baseline's exact workload flags, then gate at
  # 0.5x: service throughput is noisier than the frame micro-benches
  # (queueing, worker scheduling), so the gate only catches collapses,
  # not drift. The committed flags are authoritative — a recommitted
  # baseline re-parameterises the gate automatically.
  service_flags="$(python3 - BENCH_service.json <<'EOF'
import json
with open("BENCH_service.json") as f:
    base = json.load(f)
flags = [
    f"--jobs={base['jobs']}",
    f"--workers={base['workers']}",
    f"--queue={base['queue_capacity']}",
    f"--attempts={base['attempts']}",
    f"--seed={base['seed']}",
]
# Older baselines predate the --shards flag; -1 means sequential.
if int(base.get("shards", -1)) >= 0:
    flags.append(f"--shards={base['shards']}")
if base.get("mode") == "exact":
    flags.append("--exact")
print(" ".join(flags))
EOF
)"
  # shellcheck disable=SC2086
  (cd "build-release" && timeout 600 ./bench/fleet_service ${service_flags})
  python3 - BENCH_service.json build-release/BENCH_service.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    committed = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

old = committed["throughput_jobs_per_s"]
new = fresh["throughput_jobs_per_s"]
ratio = new / old if old > 0 else float("inf")
print(f"service throughput {old:.1f} -> {new:.1f} jobs/s ({ratio:.2f}x)")
if not fresh.get("cached_matches_uncached", False):
    print("FAIL: cached results diverged from uncached in the fresh run")
    sys.exit(1)
if not fresh.get("snapshot", {}).get("restore_verified", False):
    print("FAIL: the snapshot/restore stage did not verify in the fresh run")
    sys.exit(1)
if ratio < 0.5:
    print("FAIL: service throughput collapsed below 0.5x of the committed "
          "BENCH_service.json")
    sys.exit(1)
print("perf smoke: service throughput within 0.5x of baseline")
EOF
fi
echo "==== all stages green ======================================"
