#!/usr/bin/env bash
# clang-tidy gate over src/ using the curated .clang-tidy at the repo
# root (WarningsAsErrors: '*', so any finding fails CI).
#
#   tools/tidy.sh                 # whole of src/
#   tools/tidy.sh src/service    # restrict to a subtree
#
# Uses compile_commands.json from the release preset (configured on
# demand). When clang-tidy is not installed — this repo's container
# ships only GCC — the gate degrades to a loud skip rather than a
# failure, so the semantic analyzer and -Werror build matrix still run;
# docs/TOOLING.md covers what the tidy pass checks and why.
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY_BIN="${CLANG_TIDY:-}"
if [ -z "${TIDY_BIN}" ]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      TIDY_BIN="${candidate}"
      break
    fi
  done
fi
if [ -z "${TIDY_BIN}" ]; then
  echo "tidy: SKIPPED — clang-tidy not installed (set CLANG_TIDY=... to" \
       "point at a binary). The -Werror build matrix and" \
       "tools/analyze still gate this tree." >&2
  exit 0
fi

build_dir=build-release
if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "tidy: configuring '${build_dir}' for compile_commands.json"
  cmake --preset release >/dev/null
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' ${1:+"${1}/**/*.cpp"} | sort -u)
if [ "$#" -gt 0 ]; then
  mapfile -t files < <(git ls-files "$1/**/*.cpp" "$1/*.cpp" | sort -u)
fi
if [ ${#files[@]} -eq 0 ]; then
  echo "tidy: no files matched" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || echo 4)"
echo "tidy: ${TIDY_BIN} over ${#files[@]} files (${jobs} jobs)"
status=0
printf '%s\n' "${files[@]}" |
  xargs -P "${jobs}" -n 4 "${TIDY_BIN}" -p "${build_dir}" --quiet || status=$?

if [ "${status}" -ne 0 ]; then
  echo "tidy: FAILED (findings above; fix or justify in .clang-tidy)" >&2
  exit 1
fi
echo "tidy: OK"
